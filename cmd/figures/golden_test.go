package main

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// goldenDir is the committed golden-results directory, relative to this
// package (tests run with the package directory as cwd).
const goldenDir = "../../results/golden"

// goldenTol is the per-metric comparison tolerance for each golden CSV.
// Values are loose enough to absorb cross-platform floating-point noise
// (e.g. fused multiply-add differences) yet far tighter than the effect
// of any meaningful change to router timing, allocation, routing, or
// traffic code. Non-numeric cells (headers, labels, blank cells from
// beyond-saturation truncation) must match exactly.
var goldenTol = map[string]struct{ rel, abs float64 }{
	"golden_fig03a.csv": {rel: 0.02, abs: 0.5},  // average latency, cycles
	"golden_fig03b.csv": {rel: 0.02, abs: 0.5},  // average latency, cycles
	"golden_fig04a.csv": {rel: 0.02, abs: 0.02}, // normalized runtime / throughput
	"golden_fig06a.csv": {rel: 0.02, abs: 0.5},  // average latency, cycles
	"golden_corr.csv":   {rel: 0, abs: 0.05},    // correlation coefficients
}

// TestGoldenFigures regenerates the golden subset (Figs 3a/3b/4a router-
// parameter curves, the Fig 6a topology figure, and the Fig 5 correlation
// table at golden scale) and compares each CSV against results/golden.
// A deliberate change to the simulator must be accompanied by
// `make golden-update` plus a review of the resulting diff; an accidental
// one fails here.
func TestGoldenFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("golden regeneration simulates ~30s of experiments")
	}
	c := &ctx{out: t.TempDir()}
	for _, id := range goldenIDs() {
		if err := generators[id](c); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	for name, tol := range goldenTol {
		t.Run(name, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join(goldenDir, name))
			if err != nil {
				t.Fatalf("missing golden (run `make golden-update` once): %v", err)
			}
			got, err := os.ReadFile(filepath.Join(c.out, name))
			if err != nil {
				t.Fatal(err)
			}
			compareCSV(t, name, string(got), string(want), tol.rel, tol.abs)
		})
	}
}

// compareCSV checks got against want cell by cell: numeric cells within
// abs + rel*|want|, everything else byte-exact. Shape differences (rows,
// columns) are regressions too — a shifted saturation point truncates a
// series and must fail.
func compareCSV(t *testing.T, name, got, want string, rel, abs float64) {
	t.Helper()
	gotLines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	wantLines := strings.Split(strings.TrimRight(want, "\n"), "\n")
	if len(gotLines) != len(wantLines) {
		t.Fatalf("%s: %d rows, golden has %d\ngot:\n%s\ngolden:\n%s",
			name, len(gotLines), len(wantLines), got, want)
	}
	for row := range wantLines {
		gotCells := strings.Split(gotLines[row], ",")
		wantCells := strings.Split(wantLines[row], ",")
		if len(gotCells) != len(wantCells) {
			t.Fatalf("%s row %d: %d columns, golden has %d\ngot:    %s\ngolden: %s",
				name, row+1, len(gotCells), len(wantCells), gotLines[row], wantLines[row])
		}
		for col := range wantCells {
			g, w := gotCells[col], wantCells[col]
			gv, gerr := strconv.ParseFloat(g, 64)
			wv, werr := strconv.ParseFloat(w, 64)
			if gerr != nil || werr != nil {
				if g != w {
					t.Errorf("%s row %d col %d: %q != golden %q", name, row+1, col+1, g, w)
				}
				continue
			}
			limit := abs + rel*absFloat(wv)
			if diff := absFloat(gv - wv); diff > limit {
				t.Errorf("%s row %d col %d: %g vs golden %g (|diff| %.4g > tolerance %.4g)",
					name, row+1, col+1, gv, wv, diff, limit)
			}
		}
	}
}

func absFloat(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
