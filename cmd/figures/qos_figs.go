package main

// QoS figures: per-class latency-load curves of a two-class mix under
// strict-priority arbitration, against the priority-queueing estimator's
// predictions. The figure is the framework's QoS headline: as the offered
// load approaches the low-priority class's saturation, the high-priority
// curve stays flat — the VC partition and strict-priority allocators
// protect it — while the low-priority curve diverges.
//
// The same point set backs the accuracy regression test in qos_test.go:
// the figure is the artifact, the test is the gate.

import (
	"fmt"
	"math"

	"noceval/internal/analytic"
	"noceval/internal/core"
	"noceval/internal/stats"
)

func init() {
	register("qos", qosFig)
}

// qosParams is the figure's two-class configuration: latency-critical
// single-flit traffic prioritized over bulk bimodal transfers on the
// baseline mesh, with 4 VCs so each class owns a 2-VC partition.
func qosParams() core.NetworkParams {
	p := core.Baseline()
	p.VCs = 4
	p.Classes = []core.ClassSpec{
		{Name: "latency", Share: 0.3},
		{Name: "bulk", Share: 0.7, Sizes: "bimodal"},
	}
	return p
}

// qosPoint pairs one class's analytic prediction with its simulated
// measurement at one total offered load.
type qosPoint struct {
	class     string
	rate      float64
	predicted float64
	simulated float64
	p99       float64
}

// relErr is the point's relative error against the simulation.
func (p qosPoint) relErr() float64 {
	return math.Abs(p.predicted-p.simulated) / p.simulated
}

// qosPoints simulates the configuration at the given fractions of the
// lowest-priority class's predicted knee and pairs each class's measured
// latency with the priority estimator's prediction. Unstable points are
// dropped: the comparison is defined pre-saturation only.
func qosPoints(p core.NetworkParams, fractions []float64, opts core.OpenLoopOpts) ([]qosPoint, *analytic.PriorityEstimator, error) {
	est, err := core.AnalyticPriorityEstimator(p)
	if err != nil {
		return nil, nil, err
	}
	low := est.NumClasses() - 1
	knee := est.Knee(low, 3)
	if knee <= 0 || math.IsInf(knee, 1) {
		return nil, nil, fmt.Errorf("qos: estimator found no low-priority saturation knee")
	}
	rates := make([]float64, len(fractions))
	for i, f := range fractions {
		rates[i] = f * knee
	}
	results, err := core.OpenLoopSweepWith(p, rates, opts)
	if err != nil {
		return nil, nil, err
	}
	var out []qosPoint
	for i, r := range results {
		if !r.Stable {
			break
		}
		for c, cr := range r.PerClass {
			out = append(out, qosPoint{
				class:     cr.Name,
				rate:      rates[i],
				predicted: est.Latency(c, rates[i]),
				simulated: cr.AvgLatency,
				p99:       cr.P99,
			})
		}
	}
	return out, est, nil
}

// qosMeanRelErr is the mean relative error of the point set.
func qosMeanRelErr(pts []qosPoint) float64 {
	if len(pts) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, p := range pts {
		sum += p.relErr()
	}
	return sum / float64(len(pts))
}

// qosFig renders the per-class latency-load curves: simulated and
// analytic, from near zero load past the low-priority knee, with the
// priority-protection evidence in the notes.
func qosFig(c *ctx) error {
	opts := core.OpenLoopOpts{Warmup: 2000, Measure: 3000, DrainLimit: 20000}
	if c.full {
		opts = core.OpenLoopOpts{} // paper-scale phases
	}
	p := qosParams()
	est, err := core.AnalyticPriorityEstimator(p)
	if err != nil {
		return err
	}
	low := est.NumClasses() - 1
	knee := est.Knee(low, 3)
	if knee <= 0 || math.IsInf(knee, 1) {
		return fmt.Errorf("qos: estimator found no low-priority saturation knee")
	}
	// Past the low-priority knee the sweep's early-stop keeps only the
	// first unstable point — exactly the saturation evidence the figure
	// needs.
	fractions := []float64{0.2, 0.4, 0.6, 0.8, 0.9, 1.0, 1.1}
	rates := make([]float64, len(fractions))
	for i, f := range fractions {
		rates[i] = f * knee
	}
	results, err := core.OpenLoopSweepWith(p, rates, opts)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("qos: sweep produced no points")
	}

	f := stats.NewFigure("QoS classes under strict priority: per-class latency vs offered load",
		"offered load (flits/cycle/node)", "avg latency (cycles)")
	series := make([]*stats.Series, est.NumClasses())
	model := make([]*stats.Series, est.NumClasses())
	for cls := 0; cls < est.NumClasses(); cls++ {
		series[cls] = f.AddSeries(est.ClassName(cls))
		model[cls] = f.AddSeries(est.ClassName(cls) + " (analytic)")
	}
	for i, r := range results {
		for cls, cr := range r.PerClass {
			series[cls].Add(rates[i], cr.AvgLatency)
			if pred := est.Latency(cls, rates[i]); !math.IsInf(pred, 1) {
				model[cls].Add(rates[i], pred)
			}
		}
	}

	last := results[len(results)-1]
	if len(last.PerClass) >= 2 {
		hi, lo := last.PerClass[0], last.PerClass[len(last.PerClass)-1]
		f.Note("at offered %.3f (%.2fx low-priority knee): %s p99 = %.1f, %s p99 = %.1f (stable=%v)",
			last.Rate, last.Rate/knee, hi.Name, hi.P99, lo.Name, lo.P99, last.Stable)
		f.Note("priority protection: the %s class keeps near-zero-load latency while %s saturates", hi.Name, lo.Name)
	}
	f.Note("analytic knees: %s %.3f, %s %.3f (total offered load)",
		est.ClassName(0), est.Knee(0, 3), est.ClassName(low), knee)
	return c.writeFigure("qos_classes", f)
}
