package main

// Execution-driven figures and tables: the batch-model validation of §IV
// and the kernel-traffic study of §V (Figs 13-22, Tables I-IV).

import (
	"fmt"
	"strings"

	"noceval/internal/closedloop"
	"noceval/internal/core"
	"noceval/internal/stats"
	"noceval/internal/workload"
)

var trSweep = []int64{1, 2, 4, 8}

func init() {
	register("fig13", fig13)
	register("fig14", fig14)
	register("fig15", fig15)
	register("fig16", fig16)
	register("fig17", fig17)
	register("fig18", fig18)
	register("fig19", fig19)
	register("fig20", fig20)
	register("fig21", fig21)
	register("fig22", fig22)
	register("table1", table1)
	register("table2", table2)
	register("table3", table3)
	register("table4", table4)
}

// benchmarks in the paper's Fig 14 order.
var benchOrder = []string{"blackscholes", "lu", "canneal", "fft", "barnes"}

// fig13 contrasts lu's application-level communication pattern with the
// traffic actually injected into the network.
func fig13(c *ctx) error {
	res, err := core.Exec(core.Table2Network(1), core.ExecParams{
		Benchmark:     "lu",
		CollectMatrix: true,
		Seed:          7,
	})
	if err != nil {
		return err
	}
	var out strings.Builder
	out.WriteString("# Fig 13: lu communication pattern (16 tiles)\n")
	out.WriteString("# (a) application communication: user request messages only\n")
	out.WriteString(res.AppMatrix.Normalized().String())
	out.WriteString("\n# (b) actual injected traffic: all messages (replies, coherence, kernel)\n")
	out.WriteString(res.Matrix.Normalized().String())
	out.WriteString("\n# CSV (a):\n")
	out.WriteString(res.AppMatrix.CSV())
	out.WriteString("# CSV (b):\n")
	out.WriteString(res.Matrix.CSV())
	out.WriteString("# The actual traffic is far more uniform than the logical pattern,\n")
	out.WriteString("# motivating uniform-random traffic in the batch model comparison (SIV-A).\n")
	return c.writeFile("fig13.txt", out.String())
}

// execNormalizedRuntimes runs each benchmark over the tr sweep.
func execNormalizedRuntimes(ep core.ExecParams) (map[string][]float64, error) {
	out := map[string][]float64{}
	for _, b := range benchOrder {
		norm, err := core.ExecSweep(b, trSweep, ep)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b, err)
		}
		out[b] = norm
	}
	return out, nil
}

// fig14 compares normalized runtimes of the execution-driven system and
// the baseline batch model as tr varies.
func fig14(c *ctx) error {
	execNorm, err := execNormalizedRuntimes(core.ExecParams{Seed: 7})
	if err != nil {
		return err
	}
	baNorm, err := core.BatchSweep(trSweep, core.BatchParams{B: c.scale(300, 1000), M: 1})
	if err != nil {
		return err
	}
	f := stats.NewFigure("Fig 14: normalized runtime of execution-driven system and batch model (BA) vs tr",
		"router delay (tr)", "runtime normalized to tr=1")
	for _, b := range benchOrder {
		s := f.AddSeries(b)
		for i, tr := range trSweep {
			s.Add(float64(tr), execNorm[b][i])
		}
	}
	s := f.AddSeries("BA")
	for i, tr := range trSweep {
		s.Add(float64(tr), baNorm[i])
	}
	f.Note("each benchmark responds differently to tr; BA cannot distinguish them (paper SIV-B)")
	return c.writeFigure("fig14", f)
}

// fig15 computes the baseline batch-vs-execution correlation.
func fig15(c *ctx) error {
	execNorm, err := execNormalizedRuntimes(core.ExecParams{Seed: 7})
	if err != nil {
		return err
	}
	baNorm, err := core.BatchSweep(trSweep, core.BatchParams{B: c.scale(300, 1000), M: 1})
	if err != nil {
		return err
	}
	batchNorm := map[string][]float64{}
	for _, b := range benchOrder {
		batchNorm[b] = baNorm
	}
	corr, err := core.CorrelateExecBatch(benchOrder, trSweep, execNorm, batchNorm)
	if err != nil {
		return err
	}
	f := scatterFigure("Fig 15: correlation between execution-driven and baseline batch model",
		"GEMS-substitute normalized runtime", "batch model normalized runtime", corr)
	f.Note("correlation coefficient = %.4f +/- %.4f, rank %.4f (paper: 0.829)", corr.Coefficient, corr.CI95, corr.Rank)
	return c.writeFigure("fig15", f)
}

func scatterFigure(title, xl, yl string, corr core.Correlation) *stats.Figure {
	f := stats.NewFigure(title, xl, yl)
	byGroup := map[string]*stats.Series{}
	for _, pt := range corr.Pairs {
		s := byGroup[pt.Group]
		if s == nil {
			s = f.AddSeries(pt.Group)
			byGroup[pt.Group] = s
		}
		s.Add(pt.X, pt.Y)
	}
	return f
}

// fig16 evaluates the NAR-enhanced injection model.
func fig16(c *ctx) error {
	b := c.scale(300, 1000)
	nars := []float64{0.04, 0.12, 0.2, 0.28, 0.36, 1}
	trs := []int64{1, 2, 4}
	for _, m := range []int{1, 4, 16} {
		f := stats.NewFigure(
			fmt.Sprintf("Fig 16 (m=%d): batch model with enhanced injection model", m),
			"network access rate (NAR)", "normalized runtime / achieved throughput")
		type cell struct {
			T     float64
			theta float64
		}
		cells := make([]cell, len(trs)*len(nars))
		if err := core.Parallel(len(cells), 0, func(idx int) error {
			ti, ni := idx/len(nars), idx%len(nars)
			p := core.Baseline()
			p.RouterDelay = trs[ti]
			res, err := core.Batch(p, core.BatchParams{B: b, M: m, NAR: nars[ni]})
			if err != nil {
				return err
			}
			cells[idx] = cell{T: float64(res.Runtime), theta: res.Throughput}
			return nil
		}); err != nil {
			return err
		}
		baseT := cells[len(nars)-1].T // tr=1, NAR=1
		for ti, tr := range trs {
			st := f.AddSeries(fmt.Sprintf("tr=%d (T)", tr))
			sth := f.AddSeries(fmt.Sprintf("tr=%d (theta)", tr))
			for ni, nar := range nars {
				st.Add(nar, cells[ti*len(nars)+ni].T)
				sth.Add(nar, cells[ti*len(nars)+ni].theta)
			}
		}
		for _, s := range f.Series {
			if strings.Contains(s.Name, "(T)") && baseT > 0 {
				for i := range s.Ys {
					s.Ys[i] /= baseT
				}
			}
		}
		f.Note("low NAR hides router-delay differences even at large m (paper SIV-C1)")
		if err := c.writeFigure(fmt.Sprintf("fig16m%d", m), f); err != nil {
			return err
		}
	}
	return nil
}

// fig17 evaluates the reply-latency models.
func fig17(c *ctx) error {
	b := c.scale(300, 1000)
	models := []struct {
		suffix string
		title  string
		reply  closedloop.ReplyModel
	}{
		{"a", "memory latency = 20", closedloop.FixedReply{Latency: 20}},
		{"b", "memory latency = 50", closedloop.FixedReply{Latency: 50}},
		{"c", "memory latency = 20 + 0.1*300", closedloop.ProbabilisticReply{L2Latency: 20, MemoryLatency: 300, MissRate: 0.1}},
	}
	for _, mconf := range models {
		f := stats.NewFigure(
			fmt.Sprintf("Fig 17%s: batch model with enhanced reply model (%s)", mconf.suffix, mconf.title),
			"max outstanding requests (m)", "normalized runtime / achieved throughput")
		trs := []int64{1, 2, 4}
		var variants []core.NetworkParams
		for _, tr := range trs {
			p := core.Baseline()
			p.RouterDelay = tr
			variants = append(variants, p)
		}
		grid, err := core.BatchGrid(variants, batchMs, core.BatchParams{B: b, Reply: mconf.reply})
		if err != nil {
			return err
		}
		baseT := float64(grid[0][0].Runtime) // tr=1, m=1
		for vi, tr := range trs {
			st := f.AddSeries(fmt.Sprintf("tr=%d (T)", tr))
			sth := f.AddSeries(fmt.Sprintf("tr=%d (theta)", tr))
			for mi, m := range batchMs {
				st.Add(float64(m), float64(grid[vi][mi].Runtime))
				sth.Add(float64(m), grid[vi][mi].Throughput)
			}
		}
		for _, s := range f.Series {
			if strings.Contains(s.Name, "(T)") && baseT > 0 {
				for i := range s.Ys {
					s.Ys[i] /= baseT
				}
			}
		}
		f.Note("memory latency dominates remote access: router delay impact shrinks (SIV-C2)")
		if err := c.writeFigure("fig17"+mconf.suffix, f); err != nil {
			return err
		}
	}
	return nil
}

// enhancedBatchNorms computes normalized batch runtimes per benchmark for
// each enhanced variant, using characterization-derived parameters.
func enhancedBatchNorms(c *ctx, variants []core.Variant, clock workload.Clock, timer bool) (map[core.Variant]map[string][]float64, map[string]*core.BenchmarkModel, error) {
	models := map[string]*core.BenchmarkModel{}
	for _, bench := range benchOrder {
		m, err := core.Characterize(bench, clock, 7)
		if err != nil {
			return nil, nil, err
		}
		if !timer {
			m.TimerPeriod = 0
			m.TimerBatch = 0
		}
		models[bench] = m
	}
	b := c.scale(300, 1000)
	out := map[core.Variant]map[string][]float64{}
	for _, v := range variants {
		out[v] = map[string][]float64{}
		for _, bench := range benchOrder {
			bp := models[bench].BatchParams(b, 1, v)
			norm, err := core.BatchSweep(trSweep, bp)
			if err != nil {
				return nil, nil, fmt.Errorf("%s %s: %w", v, bench, err)
			}
			out[v][bench] = norm
		}
	}
	return out, models, nil
}

// fig18 compares execution-driven runtimes with the enhanced batch models.
func fig18(c *ctx) error {
	execNorm, err := execNormalizedRuntimes(core.ExecParams{Seed: 7})
	if err != nil {
		return err
	}
	variants := []core.Variant{core.BAInj, core.BARe, core.BAInjRe}
	batch, _, err := enhancedBatchNorms(c, variants, workload.Clock3GHz, false)
	if err != nil {
		return err
	}
	t := stats.NewTable("Fig 18: normalized runtime, execution-driven vs enhanced batch models",
		"benchmark", "model", "tr=1", "tr=2", "tr=4", "tr=8")
	for _, bench := range benchOrder {
		row := func(label string, xs []float64) {
			cells := []string{bench, label}
			for _, x := range xs {
				cells = append(cells, fmt.Sprintf("%.3f", x))
			}
			t.AddRow(cells...)
		}
		row("exec", execNorm[bench])
		for _, v := range variants {
			row(v.String(), batch[v][bench])
		}
	}
	return c.writeTable("fig18", t)
}

// fig19 computes the enhanced-model correlations.
func fig19(c *ctx) error {
	execNorm, err := execNormalizedRuntimes(core.ExecParams{Seed: 7})
	if err != nil {
		return err
	}
	variants := []core.Variant{core.BAInj, core.BARe, core.BAInjRe}
	batch, _, err := enhancedBatchNorms(c, variants, workload.Clock3GHz, false)
	if err != nil {
		return err
	}
	f := stats.NewFigure("Fig 19: correlation between execution-driven and enhanced batch models",
		"GEMS-substitute normalized runtime", "batch model normalized runtime")
	for _, v := range variants {
		corr, err := core.CorrelateExecBatch(benchOrder, trSweep, execNorm, batch[v])
		if err != nil {
			return err
		}
		s := f.AddSeries(v.String())
		for _, pt := range corr.Pairs {
			s.Add(pt.X, pt.Y)
		}
		f.Note("%s correlation coefficient = %.4f +/- %.4f (rank %.4f)", v, corr.Coefficient, corr.CI95, corr.Rank)
	}
	f.Note("paper: enhanced models beat BA (0.829) but BA_inj+re alone underperforms until OS traffic is modelled (SIV-D)")
	return c.writeFigure("fig19", f)
}

// fig20 measures the kernel/user injection-rate split across clocks.
func fig20(c *ctx) error {
	f := stats.NewFigure("Fig 20: network injection rate split user/kernel (timer enabled)",
		"configuration index", "flits/cycle/node")
	t := stats.NewTable("Fig 20: injection rate of benchmarks as router delay varies",
		"clock", "benchmark", "tr", "user (flits/cycle/node)", "kernel", "kernel share", "timer interrupts")
	idx := 0.0
	for _, clock := range []workload.Clock{workload.Clock75MHz, workload.Clock3GHz} {
		su := f.AddSeries("user " + clock.String())
		sk := f.AddSeries("kernel " + clock.String())
		for _, bench := range benchOrder {
			for _, tr := range trSweep {
				res, err := core.Exec(core.Table2Network(tr), core.ExecParams{
					Benchmark: bench, Clock: clock, Timer: true, Seed: 7,
				})
				if err != nil {
					return err
				}
				su.Add(idx, res.UserNAR)
				sk.Add(idx, res.KernelNAR)
				t.AddRow(clock.String(), bench, fmt.Sprintf("%d", tr),
					fmt.Sprintf("%.4f", res.UserNAR), fmt.Sprintf("%.4f", res.KernelNAR),
					fmt.Sprintf("%.2f", float64(res.KernelFlits)/float64(res.TotalFlits)),
					fmt.Sprintf("%d", res.TimerInterrupts))
				idx++
			}
		}
	}
	f.Note("kernel share is much larger at 75MHz: timer interval is wall-clock fixed (SV)")
	if err := c.writeFigure("fig20", f); err != nil {
		return err
	}
	return c.writeTable("fig20_table", t)
}

// fig21 records the injection-rate timeline of blackscholes at both clocks.
func fig21(c *ctx) error {
	for _, clock := range []workload.Clock{workload.Clock75MHz, workload.Clock3GHz} {
		res, err := core.Exec(core.Table2Network(1), core.ExecParams{
			Benchmark:      "blackscholes",
			Clock:          clock,
			Timer:          true,
			SampleInterval: 1000,
			Seed:           7,
		})
		if err != nil {
			return err
		}
		f := stats.NewFigure(
			fmt.Sprintf("Fig 21 (%s): injection rate of blackscholes over time", clock),
			"time (cycles)", "flits/cycle (16 cores)")
		su := f.AddSeries("user")
		sk := f.AddSeries("kernel")
		for _, s := range res.Timeline {
			su.Add(float64(s.Cycle), s.UserRate*16/16) // total over 16 cores
			sk.Add(float64(s.Cycle), s.KernelRate)
		}
		f.Note("timer interrupts = %d; kernel bursts at start/end are thread create/join syscalls", res.TimerInterrupts)
		if err := c.writeFigure("fig21"+clock.String(), f); err != nil {
			return err
		}
	}
	return nil
}

// fig22 correlates the fully enhanced batch model with and without the OS
// model against timer-enabled execution-driven runs at both clocks.
func fig22(c *ctx) error {
	f := stats.NewFigure("Fig 22: correlation with/without OS modelling",
		"GEMS-substitute normalized runtime", "batch model normalized runtime")
	for _, clock := range []workload.Clock{workload.Clock75MHz, workload.Clock3GHz} {
		execNorm, err := execNormalizedRuntimes(core.ExecParams{Clock: clock, Timer: true, Seed: 7})
		if err != nil {
			return err
		}
		withoutOS, _, err := enhancedBatchNorms(c, []core.Variant{core.BAInjRe}, clock, true)
		if err != nil {
			return err
		}
		withOS, _, err := enhancedBatchNorms(c, []core.Variant{core.BAInjReOS}, clock, true)
		if err != nil {
			return err
		}
		cw, err := core.CorrelateExecBatch(benchOrder, trSweep, execNorm, withoutOS[core.BAInjRe])
		if err != nil {
			return err
		}
		co, err := core.CorrelateExecBatch(benchOrder, trSweep, execNorm, withOS[core.BAInjReOS])
		if err != nil {
			return err
		}
		s := f.AddSeries(clock.String() + " with OS model")
		for _, pt := range co.Pairs {
			s.Add(pt.X, pt.Y)
		}
		f.Note("%s: without OS model r = %.4f +/- %.4f, with OS model r = %.4f +/- %.4f", clock, cw.Coefficient, cw.CI95, co.Coefficient, co.CI95)
	}
	f.Note("paper: 3GHz 0.9541 -> 0.9724; 75MHz 0.7052 -> 0.9311")
	return c.writeFigure("fig22", f)
}

// table1 dumps the Table I network parameter space with baselines.
func table1(c *ctx) error {
	t := stats.NewTable("Table I: simulation parameters (bold = baseline)",
		"parameter", "values", "baseline")
	t.AddRow("topology", "8x8 2D mesh, 16x16 2D mesh, torus, ring", "8x8 2D mesh")
	t.AddRow("virtual channels", "2, 4", "2")
	t.AddRow("VC buffer size", "1, 2, 4, 8, 16, 32", "16")
	t.AddRow("router delay (cycles)", "1, 2, 4, 8", "1")
	t.AddRow("routing algorithm", "DOR, VAL, MA, ROMM", "DOR")
	t.AddRow("arbitration", "round robin, age-based", "round robin")
	t.AddRow("link delay", "1 cycle (2 on folded torus)", "1")
	t.AddRow("link bandwidth", "1 flit/cycle", "1 flit/cycle")
	t.AddRow("packet sizes", "1 flit, bimodal (1 and 4 flit)", "1 flit")
	t.AddRow("traffic patterns", "uniform, bit reversal, bit complement, transpose", "uniform")
	return c.writeTable("table1", t)
}

// table2 dumps the Table II CMP parameters used by the GEMS substitute.
func table2(c *ctx) error {
	t := stats.NewTable("Table II: execution-driven CMP parameters",
		"component", "configuration")
	t.AddRow("processor", "16 in-order cores, blocking loads, 8-entry store buffer")
	t.AddRow("L1 caches", "private, 32 KB 4-way, 64-byte lines, 2-cycle access")
	t.AddRow("L2 cache", "shared, 512 KB/tile (8 MB total), 10-cycle access, MSI directory")
	t.AddRow("memory", "300-cycle DRAM access")
	t.AddRow("network", "4-ary 2-cube mesh, 16-byte links, 1/2/4/8 router delay, 8 VCs, 4 buffers/VC, DOR")
	return c.writeTable("table2", t)
}

// table3 reproduces the NAR calculation per benchmark (3 GHz, no timer).
func table3(c *ctx) error {
	t := stats.NewTable("Table III: GEMS-substitute calculation of NAR",
		"benchmark", "ideal cycle count", "total flits", "NAR (req/cycle/node)", "L2 miss rate")
	for _, bench := range benchOrder {
		m, err := core.Characterize(bench, workload.Clock3GHz, 7)
		if err != nil {
			return err
		}
		t.AddRow(bench,
			fmt.Sprintf("%d", m.IdealCycles),
			fmt.Sprintf("%d", m.TotalFlits),
			fmt.Sprintf("%.4f", m.NAR),
			fmt.Sprintf("%.3f", m.L2Miss))
	}
	return c.writeTable("table3", t)
}

// table4 reproduces the benchmark characteristics used by the OS model.
func table4(c *ctx) error {
	t := stats.NewTable("Table IV: characteristics of benchmarks (75 MHz, timer enabled)",
		"benchmark", "NAR user", "NAR OS", "L2 miss user", "L2 miss OS",
		"static kernel traffic", "timer period (cycles)", "timer batch")
	for _, bench := range benchOrder {
		m, err := core.Characterize(bench, workload.Clock75MHz, 7)
		if err != nil {
			return err
		}
		t.AddRow(bench,
			fmt.Sprintf("%.4f", m.UserNAR),
			fmt.Sprintf("%.4f", m.KernelNAR),
			fmt.Sprintf("%.3f", m.L2Miss),
			fmt.Sprintf("%.3f", m.KernelL2Miss),
			fmt.Sprintf("%.3f", m.StaticKernelFrac),
			fmt.Sprintf("%d", m.TimerPeriod),
			fmt.Sprintf("%d", m.TimerBatch))
	}
	return c.writeTable("table4", t)
}
