package main

import (
	"testing"

	"noceval/internal/core"
)

// quickQoSOpts are the shortened phases the QoS gates simulate with (same
// scale as the analytic-corr gate).
var quickQoSOpts = core.OpenLoopOpts{Warmup: 2000, Measure: 3000, DrainLimit: 20000}

// TestQoSPriorityAccuracy is the accuracy gate behind the qos figure: the
// priority-queueing estimator must track the simulated per-class latencies
// in the pre-saturation region (loads up to 0.7 of the low-priority knee)
// on the two-class baseline mesh. The 30% bound is deliberately loose —
// the truncated P-K model ignores flit-level interleaving — but tight
// enough to catch a broken cumulative-load term, which shows up as
// order-of-magnitude errors on the low-priority class.
func TestQoSPriorityAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates three open-loop points")
	}
	pts, _, err := qosPoints(qosParams(), []float64{0.25, 0.5, 0.7}, quickQoSOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 4 {
		t.Fatalf("only %d stable pre-saturation class points, want >= 4", len(pts))
	}
	const bound = 0.30
	mre := qosMeanRelErr(pts)
	t.Logf("pre-saturation per-class mean relative error %.3f over %d points (bound %.2f)", mre, len(pts), bound)
	if mre > bound {
		t.Errorf("per-class mean relative error %.3f exceeds %.2f", mre, bound)
		for _, p := range pts {
			t.Logf("%s rate %.3f: analytic %.2f simulated %.2f (err %.1f%%)",
				p.class, p.rate, p.predicted, p.simulated, 100*p.relErr())
		}
	}
}

// TestQoSPriorityProtection is the qos-smoke gate: at the low-priority
// class's predicted saturation knee, the high-priority class's tail
// latency must stay strictly below the low-priority one's — the whole
// point of per-class VCs with strict-priority arbitration.
func TestQoSPriorityProtection(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates one open-loop point at saturation")
	}
	p := qosParams()
	est, err := core.AnalyticPriorityEstimator(p)
	if err != nil {
		t.Fatal(err)
	}
	knee := est.Knee(est.NumClasses()-1, 3)
	results, err := core.OpenLoopSweepWith(p, []float64{knee}, quickQoSOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no results at the low-priority knee")
	}
	r := results[len(results)-1]
	if len(r.PerClass) != 2 {
		t.Fatalf("expected 2 per-class results, got %d", len(r.PerClass))
	}
	hi, lo := r.PerClass[0], r.PerClass[1]
	t.Logf("at offered %.3f: %s p99 %.1f avg %.2f; %s p99 %.1f avg %.2f",
		r.Rate, hi.Name, hi.P99, hi.AvgLatency, lo.Name, lo.P99, lo.AvgLatency)
	if hi.MeasuredPackets == 0 || lo.MeasuredPackets == 0 {
		t.Fatalf("class starved of measured packets: hi %d, lo %d", hi.MeasuredPackets, lo.MeasuredPackets)
	}
	if !(hi.P99 < lo.P99) {
		t.Errorf("high-priority p99 %.1f not below low-priority p99 %.1f at saturation", hi.P99, lo.P99)
	}
	if !(hi.AvgLatency < lo.AvgLatency) {
		t.Errorf("high-priority avg %.2f not below low-priority avg %.2f at saturation", hi.AvgLatency, lo.AvgLatency)
	}
}
