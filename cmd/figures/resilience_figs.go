package main

// Resilience sweep: graceful-degradation curves under seed-deterministic
// fault injection (internal/fault). For a ladder of per-link fault rates,
// the open-loop figure tracks average/p99 latency and the delivered
// fraction at a fixed offered load, and the batch figure tracks normalized
// runtime — both with the recovery NIC retransmitting on timeout. Every
// point flows through the experiment cache: the fault parameters are part
// of NetworkParams, so each faulted configuration hashes under its own key
// while the rate-zero point shares the fault-free baseline's entry.

import (
	"fmt"

	"noceval/internal/core"
	"noceval/internal/fault"
	"noceval/internal/openloop"
	"noceval/internal/stats"
)

func init() {
	register("resilience", resilienceSweep)
}

// resilienceRates is the fault-rate ladder (per link traversal). Zero is
// the fault-free baseline the other points are normalized against.
var resilienceRates = []float64{0, 1e-4, 5e-4, 1e-3, 5e-3}

// resilienceParams returns the baseline network with the given drop and
// corrupt rates and the recovery NIC enabled. A rate-zero ladder point
// keeps Fault == nil so it is byte-identical (cache key included) to the
// fault-free baseline.
func resilienceParams(rate float64) core.NetworkParams {
	p := core.Baseline()
	if rate == 0 {
		return p
	}
	p.Fault = &fault.Params{
		DropRate:    rate,
		CorruptRate: rate,
		Timeout:     500,
		MaxRetries:  6,
		RetryCap:    8,
	}
	return p
}

func resilienceSweep(c *ctx) error {
	phases := goldenPhases
	if c.full {
		phases = core.OpenLoopOpts{}
	}
	load := 0.2
	b := c.scale(goldenB, 1000)

	type point struct {
		ol *openloop.Result
		bt float64 // batch runtime
	}
	pts := make([]point, len(resilienceRates))
	if err := core.Parallel(len(resilienceRates), 0, func(i int) error {
		p := resilienceParams(resilienceRates[i])
		ol, err := core.OpenLoopWith(p, load, phases)
		if err != nil {
			return err
		}
		br, err := core.Batch(p, core.BatchParams{B: b, M: 4})
		if err != nil {
			return err
		}
		if !br.Completed {
			return fmt.Errorf("resilience batch at rate %g did not complete", resilienceRates[i])
		}
		pts[i] = point{ol: ol, bt: float64(br.Runtime)}
		return nil
	}); err != nil {
		return err
	}

	lat := stats.NewFigure("Resilience: open-loop latency vs fault rate (load 0.2, recovery NIC on)",
		"fault rate (per link traversal)", "latency (cycles)")
	avg := lat.AddSeries("avg latency")
	p99 := lat.AddSeries("p99 latency")
	for i, r := range resilienceRates {
		avg.Add(r, pts[i].ol.AvgLatency)
		p99.Add(r, pts[i].ol.P99)
	}
	if err := c.writeFigure("resilience_openloop", lat); err != nil {
		return err
	}

	deg := stats.NewFigure("Resilience: degradation vs fault rate",
		"fault rate (per link traversal)", "delivered fraction / p99 inflation / normalized batch runtime")
	df := deg.AddSeries("delivered fraction (open-loop)")
	infl := deg.AddSeries("p99 inflation (open-loop)")
	rt := deg.AddSeries("batch runtime (normalized)")
	baseP99, baseT := pts[0].ol.P99, pts[0].bt
	for i, r := range resilienceRates {
		frac := 1.0
		if fs := pts[i].ol.Faults; fs != nil {
			frac = fs.DeliveredFraction
			if baseP99 > 0 {
				fs.P99Inflation = pts[i].ol.P99 / baseP99
			}
		}
		df.Add(r, frac)
		if baseP99 > 0 {
			infl.Add(r, pts[i].ol.P99/baseP99)
		}
		rt.Add(r, pts[i].bt/baseT)
	}
	return c.writeFigure("resilience_degradation", deg)
}
