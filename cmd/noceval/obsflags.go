package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"noceval/internal/core"
	"noceval/internal/obs"
	"noceval/internal/obs/export"
	"noceval/internal/topology"
)

// obsOpts gathers the run-level observability and profiling flags shared
// by the network subcommands.
type obsOpts struct {
	metrics     bool
	trace       bool
	sampleEvery int64
	progress    bool
	out         string
	cpuprofile  string
	memprofile  string
	ledger      string
	serve       string

	cpuFile *os.File
	srv     *export.Server
}

// obsFlags registers the observability flags on a subcommand's flag set.
// When full is false only the progress/profiling flags are registered
// (used by sweep-style commands that run many short simulations).
func obsFlags(fs *flag.FlagSet, full bool) *obsOpts {
	o := &obsOpts{}
	if full {
		fs.BoolVar(&o.metrics, "metrics", false, "collect metrics + per-router telemetry and write them under -obs-out")
		fs.BoolVar(&o.trace, "trace", false, "record flit-lifecycle events and write a Chrome trace under -obs-out")
		fs.Int64Var(&o.sampleEvery, "sample-every", 100, "telemetry sampling period in cycles")
		fs.StringVar(&o.out, "obs-out", "results/telemetry", "output directory for metrics/telemetry/trace files")
	}
	fs.BoolVar(&o.progress, "progress", false, "print a heartbeat (cycles/sec, ETA) to stderr during the run")
	fs.StringVar(&o.cpuprofile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&o.memprofile, "memprofile", "", "write a heap profile to this file on exit")
	fs.StringVar(&o.ledger, "ledger", "", "append one JSONL record per experiment run to this file")
	fs.StringVar(&o.serve, "serve", "", "serve live metrics on this address (e.g. :9500) during the run")
	return o
}

// setup starts the opt-in cross-run observability selected by the flags:
// the live metrics endpoint (which installs the process-wide registry the
// subsystems publish into) and the run ledger. Call teardown before
// exiting. With neither flag set it does nothing.
func (o *obsOpts) setup() error {
	if o.serve != "" {
		srv, err := export.Enable(o.serve)
		if err != nil {
			return err
		}
		o.srv = srv
		fmt.Fprintf(os.Stderr, "serving live metrics on http://%s/metrics\n", srv.Addr())
	}
	if o.ledger != "" {
		if err := core.EnableLedger(o.ledger); err != nil {
			return err
		}
	}
	return nil
}

// teardown closes the ledger and the metrics endpoint.
func (o *obsOpts) teardown() {
	if o.ledger != "" {
		fmt.Fprintf(os.Stderr, "run ledger: %d records appended to %s\n", core.LedgerAppends(), o.ledger)
		core.DisableLedger()
	}
	o.srv.Close()
}

// hooks builds the run attachments selected by the flags. The observer is
// nil — the zero-overhead disabled path — unless -metrics or -trace was
// given.
func (o *obsOpts) hooks() core.Hooks {
	h := core.Hooks{
		Obs: obs.NewObserver(obs.Options{Metrics: o.metrics, Trace: o.trace, SampleEvery: o.sampleEvery}),
	}
	if o.progress {
		h.Progress = obs.NewProgress(os.Stderr, time.Second)
	}
	return h
}

// startProfiling begins the CPU profile when requested. Call
// stopProfiling before exiting.
func (o *obsOpts) startProfiling() error {
	if o.cpuprofile == "" {
		return nil
	}
	f, err := os.Create(o.cpuprofile)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return err
	}
	o.cpuFile = f
	return nil
}

// stopProfiling finishes the CPU profile and writes the heap profile.
func (o *obsOpts) stopProfiling() error {
	if o.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := o.cpuFile.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote CPU profile to %s\n", o.cpuprofile)
		o.cpuFile = nil
	}
	if o.memprofile != "" {
		f, err := os.Create(o.memprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote heap profile to %s\n", o.memprofile)
	}
	return nil
}

// writeOutputs exports everything the observer collected: metrics
// (JSON+CSV), router/node telemetry time series (CSV+JSON), a per-router
// utilization heatmap shaped like the topology, and the Chrome trace.
func (o *obsOpts) writeOutputs(h core.Hooks, topoName string) error {
	ob := h.Obs
	if ob == nil {
		return nil
	}
	if err := os.MkdirAll(o.out, 0o755); err != nil {
		return err
	}
	write := func(name string, data []byte) error {
		path := filepath.Join(o.out, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		return nil
	}
	if ob.Registry != nil {
		js, err := ob.Registry.JSON()
		if err != nil {
			return err
		}
		if err := write("metrics.json", js); err != nil {
			return err
		}
		if err := write("metrics.csv", []byte(ob.Registry.CSV())); err != nil {
			return err
		}
	}
	if ob.Telemetry != nil {
		if err := write("telemetry_routers.csv", []byte(ob.Telemetry.RouterCSV())); err != nil {
			return err
		}
		if len(ob.Telemetry.Nodes) > 0 {
			if err := write("telemetry_nodes.csv", []byte(ob.Telemetry.NodeCSV())); err != nil {
				return err
			}
		}
		js, err := ob.Telemetry.JSON()
		if err != nil {
			return err
		}
		if err := write("telemetry.json", js); err != nil {
			return err
		}
		topo, err := topology.ByName(topoName)
		if err != nil {
			return err
		}
		hm := core.UtilizationHeatmap(ob.Telemetry, topo)
		heat := fmt.Sprintf("# per-router mean crossbar utilization (flits/cycle), max %.4g\n%s",
			hm.MaxValue(), hm.String())
		if err := write("util_heatmap.txt", []byte(heat)); err != nil {
			return err
		}
		if err := write("util_heatmap.csv", []byte(hm.CSV())); err != nil {
			return err
		}
	}
	if ob.Tracer != nil {
		js, err := ob.Tracer.ChromeJSON()
		if err != nil {
			return err
		}
		if err := write("trace.json", js); err != nil {
			return err
		}
		if d := ob.Tracer.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "trace ring overflowed: %d oldest events dropped (raise the ring size or shorten the run)\n", d)
		}
	}
	return nil
}
