package main

import (
	"flag"
	"fmt"

	"noceval/internal/fault"
)

// faultOpts gathers the fault-injection flags shared by the network
// subcommands. All flags default to "off"; build returns nil when none was
// given, so fault-free invocations produce the exact pre-fault parameter
// schema (and cache keys).
type faultOpts struct {
	corrupt  float64
	drop     float64
	outages  []fault.Outage
	kills    []fault.Kill
	timeout  int64
	retries  int
	retryCap int
	seed     uint64
}

// faultFlags registers the fault-injection flags on a subcommand's flag
// set.
func faultFlags(fs *flag.FlagSet) *faultOpts {
	o := &faultOpts{}
	fs.Float64Var(&o.corrupt, "fault-corrupt", 0, "per-link-traversal flit corruption probability")
	fs.Float64Var(&o.drop, "fault-drop", 0, "per-link-traversal packet drop probability (head flits)")
	fs.Func("fault-outage", "link outage window node:port:from:until (repeatable)", func(s string) error {
		var ot fault.Outage
		if _, err := fmt.Sscanf(s, "%d:%d:%d:%d", &ot.Node, &ot.Port, &ot.From, &ot.Until); err != nil {
			return fmt.Errorf("want node:port:from:until, got %q", s)
		}
		o.outages = append(o.outages, ot)
		return nil
	})
	fs.Func("fault-kill", "hard router kill node@cycle (repeatable)", func(s string) error {
		var k fault.Kill
		if _, err := fmt.Sscanf(s, "%d@%d", &k.Node, &k.At); err != nil {
			return fmt.Errorf("want node@cycle, got %q", s)
		}
		o.kills = append(o.kills, k)
		return nil
	})
	fs.Int64Var(&o.timeout, "fault-timeout", 0, "recovery NIC retransmission timeout in cycles (0 = no recovery)")
	fs.IntVar(&o.retries, "fault-retries", 0, "max retransmissions per packet before abandoning (0 = abandon at first timeout)")
	fs.IntVar(&o.retryCap, "fault-retry-cap", 0, "max concurrently retrying packets per node, MSHR-style (0 = unlimited)")
	fs.Uint64Var(&o.seed, "fault-seed", 0, "fault RNG seed (0 = derive from the network seed)")
	return o
}

// build materializes the fault parameters, or nil when every flag kept its
// default.
func (o *faultOpts) build() *fault.Params {
	p := &fault.Params{
		CorruptRate: o.corrupt,
		DropRate:    o.drop,
		Outages:     o.outages,
		Kills:       o.kills,
		Timeout:     o.timeout,
		MaxRetries:  o.retries,
		RetryCap:    o.retryCap,
		Seed:        o.seed,
	}
	if !p.Enabled() {
		return nil
	}
	return p
}

// printFaultStats renders the fault/recovery counters of a faulted run.
func printFaultStats(fs *fault.Stats) {
	if fs == nil {
		return
	}
	fmt.Printf("faults: injected %d corrupt + %d drop, detected %d, dead flits %d, dead packets %d\n",
		fs.CorruptInjected, fs.DropInjected, fs.Detected, fs.DeadFlits, fs.DeadPackets)
	if fs.Tracked > 0 {
		fmt.Printf("recovery: tracked %d, acked %d, retried %d, abandoned %d, dup %d, outstanding %d\n",
			fs.Tracked, fs.Acked, fs.Retried, fs.Abandoned, fs.Duplicates, fs.Outstanding)
	}
	fmt.Printf("delivered fraction %.4f\n", fs.DeliveredFraction)
}
