// Command noceval runs a single experiment of the on-chip network
// evaluation framework from the command line.
//
// Subcommands:
//
//	noceval openloop -rate 0.2 [-topo mesh8x8] [-routing dor] ...
//	noceval sweep    -hi 0.5 [net flags]            # latency/load curve
//	noceval batch    -b 1000 -m 4 [-nar 0.3] [-reply fixed:20|prob:20:300:0.1]
//	noceval barrier  -b 1000 [-phases 1]
//	noceval exec     -bench lu [-tr 1] [-clock 75mhz|3ghz] [-timer]
//	noceval char     -bench lu [-clock 3ghz]        # Table III/IV characterization
//
// Network flags shared by all network subcommands:
//
//	-topo mesh8x8|torus8x8|ring64|mesh16x16|mesh4x4
//	-routing dor|val|ma|romm    -vcs 2   -q 16   -tr 1
//	-arb rr|age   -pattern uniform|transpose|bitcomp|bitrev  -sizes single|bimodal
//	-seed 1
//
// Fault-injection flags (openloop, sweep, batch, barrier; all default off):
//
//	-fault-corrupt 1e-4   per-link flit corruption probability
//	-fault-drop 1e-4      per-link packet drop probability
//	-fault-outage n:p:t0:t1   link n.p down for [t0,t1) (repeatable)
//	-fault-kill n@t       kill router n at cycle t (repeatable)
//	-fault-timeout 500    enable recovery NIC: retransmission timeout
//	-fault-retries 4      max retransmissions   -fault-retry-cap 8  MSHR cap
//	-fault-seed 0         fault RNG seed (0 = derived from -seed)
//
// Observability flags (openloop and batch; sweep takes the last three):
//
//	-metrics            collect metrics + per-router telemetry, write under -obs-out
//	-trace              record flit lifecycles, write a Chrome trace (chrome://tracing)
//	-sample-every 100   telemetry sampling period in cycles
//	-obs-out dir        output directory (default results/telemetry)
//	-progress           heartbeat with cycles/sec and ETA on stderr
//	-cpuprofile f.pprof -memprofile f.pprof
//	-ledger runs.jsonl  append one structured record per experiment run
//	-serve :9500        live metrics endpoint (/metrics, /progress, ...)
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"noceval/internal/closedloop"
	"noceval/internal/core"
	"noceval/internal/workload"
)

func netFlags(fs *flag.FlagSet) *core.NetworkParams {
	p := core.Baseline()
	fs.StringVar(&p.Topology, "topo", p.Topology, "topology (mesh8x8, torus8x8, ring64, ...)")
	fs.StringVar(&p.Routing, "routing", p.Routing, "routing algorithm (dor, val, ma, romm)")
	fs.IntVar(&p.VCs, "vcs", p.VCs, "virtual channels per port")
	fs.IntVar(&p.BufDepth, "q", p.BufDepth, "VC buffer depth in flits")
	fs.Int64Var(&p.RouterDelay, "tr", p.RouterDelay, "router delay in cycles")
	fs.StringVar(&p.Arb, "arb", p.Arb, "arbitration (rr, age)")
	fs.StringVar(&p.Pattern, "pattern", p.Pattern, "traffic pattern")
	fs.StringVar(&p.Sizes, "sizes", p.Sizes, "packet sizes (single, bimodal)")
	fs.Uint64Var(&p.Seed, "seed", p.Seed, "random seed")
	fs.IntVar(&p.Shards, "shards", core.EnvShards(),
		"spatial tiles stepped concurrently per cycle (0/1 sequential; bit-identical at any count; default $NOCEVAL_SHARDS)")
	return &p
}

func parseReply(spec string) (closedloop.ReplyModel, error) {
	if spec == "" {
		return nil, nil
	}
	parts := strings.Split(spec, ":")
	switch parts[0] {
	case "fixed":
		if len(parts) != 2 {
			return nil, fmt.Errorf("reply spec: want fixed:<latency>")
		}
		lat, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil {
			return nil, err
		}
		return closedloop.FixedReply{Latency: lat}, nil
	case "prob":
		if len(parts) != 4 {
			return nil, fmt.Errorf("reply spec: want prob:<l2>:<mem>:<missrate>")
		}
		l2, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil {
			return nil, err
		}
		mem, err := strconv.ParseInt(parts[2], 10, 64)
		if err != nil {
			return nil, err
		}
		mr, err := strconv.ParseFloat(parts[3], 64)
		if err != nil {
			return nil, err
		}
		return closedloop.ProbabilisticReply{L2Latency: l2, MemoryLatency: mem, MissRate: mr}, nil
	default:
		return nil, fmt.Errorf("reply spec: unknown model %q", parts[0])
	}
}

func parseClock(s string) (workload.Clock, error) {
	switch strings.ToLower(s) {
	case "", "3ghz":
		return workload.Clock3GHz, nil
	case "75mhz":
		return workload.Clock75MHz, nil
	default:
		return 0, fmt.Errorf("unknown clock %q (want 75mhz or 3ghz)", s)
	}
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "openloop":
		err = cmdOpenLoop(os.Args[2:])
	case "sweep":
		err = cmdSweep(os.Args[2:])
	case "batch":
		err = cmdBatch(os.Args[2:])
	case "barrier":
		err = cmdBarrier(os.Args[2:])
	case "exec":
		err = cmdExec(os.Args[2:])
	case "char":
		err = cmdChar(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "noceval:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: noceval <openloop|sweep|batch|barrier|exec|char|run> [flags]")
	os.Exit(2)
}

// cmdRun executes a declarative JSON experiment spec.
func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	path := fs.String("config", "", "path to a JSON experiment spec")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *path == "" {
		return fmt.Errorf("run: -config is required")
	}
	data, err := os.ReadFile(*path)
	if err != nil {
		return err
	}
	spec, err := core.ParseSpec(data)
	if err != nil {
		return err
	}
	report, err := spec.Run()
	if err != nil {
		return err
	}
	fmt.Print(report)
	return nil
}

func cmdOpenLoop(args []string) error {
	fs := flag.NewFlagSet("openloop", flag.ExitOnError)
	p := netFlags(fs)
	rate := fs.Float64("rate", 0.1, "offered load in flits/cycle/node")
	fo := faultFlags(fs)
	co := classFlags(fs)
	oo := obsFlags(fs, true)
	if err := fs.Parse(args); err != nil {
		return err
	}
	p.Fault = fo.build()
	if err := co.apply(p); err != nil {
		return err
	}
	if err := oo.setup(); err != nil {
		return err
	}
	defer oo.teardown()
	if err := oo.startProfiling(); err != nil {
		return err
	}
	h := oo.hooks()
	res, err := core.OpenLoopObserved(*p, *rate, h)
	if err != nil {
		return err
	}
	if err := oo.writeOutputs(h, p.Topology); err != nil {
		return err
	}
	if err := oo.stopProfiling(); err != nil {
		return err
	}
	fmt.Printf("config: %s\n", p)
	fmt.Printf("offered %.3f accepted %.3f stable %v\n", res.Rate, res.Accepted, res.Stable)
	fmt.Printf("avg latency %.2f cycles (p95 %.1f, p99 %.1f), worst per-node avg %.2f\n",
		res.AvgLatency, res.P95, res.P99, res.WorstLatency)
	fmt.Printf("avg hops %.2f, measured packets %d\n", res.AvgHops, res.MeasuredPackets)
	if res.LostPackets > 0 {
		fmt.Printf("lost packets %d\n", res.LostPackets)
	}
	printPerClass(res.PerClass)
	printFaultStats(res.Faults)
	return nil
}

func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	p := netFlags(fs)
	hi := fs.Float64("hi", 0.5, "highest offered load")
	step := fs.Float64("step", 0.02, "load step")
	screen := fs.Bool("screen", false, "analytically screen the sweep: skip predicted deep-saturation simulations (output is bit-identical)")
	fo := faultFlags(fs)
	co := classFlags(fs)
	oo := obsFlags(fs, false)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *screen {
		core.EnableScreening()
		defer core.DisableScreening()
	}
	p.Fault = fo.build()
	if err := co.apply(p); err != nil {
		return err
	}
	if err := oo.setup(); err != nil {
		return err
	}
	defer oo.teardown()
	if err := oo.startProfiling(); err != nil {
		return err
	}
	var rates []float64
	for r := *step; r <= *hi; r += *step {
		rates = append(rates, r)
	}
	results, err := core.OpenLoopSweep(*p, rates)
	if err != nil {
		return err
	}
	if err := oo.stopProfiling(); err != nil {
		return err
	}
	fmt.Printf("config: %s\n", p)
	fmt.Printf("%10s %12s %12s %8s\n", "offered", "avg latency", "accepted", "stable")
	for _, r := range results {
		fmt.Printf("%10.3f %12.2f %12.3f %8v\n", r.Rate, r.AvgLatency, r.Accepted, r.Stable)
	}
	if len(results) > 0 && len(results[0].PerClass) > 0 {
		fmt.Printf("\nper-class avg latency (cycles)\n%10s", "offered")
		for _, cr := range results[0].PerClass {
			fmt.Printf(" %12s", cr.Name)
		}
		fmt.Println()
		for _, r := range results {
			fmt.Printf("%10.3f", r.Rate)
			for _, cr := range r.PerClass {
				fmt.Printf(" %12.2f", cr.AvgLatency)
			}
			fmt.Println()
		}
	}
	if *screen {
		s := core.ScreeningSummary()
		fmt.Printf("screening: simulated %d of %d sweep points (skipped %d, refined %d)\n",
			s.Simulated, s.Considered, s.Skipped, s.Refined)
	}
	return nil
}

func cmdBatch(args []string) error {
	fs := flag.NewFlagSet("batch", flag.ExitOnError)
	p := netFlags(fs)
	b := fs.Int("b", 1000, "batch size per node")
	m := fs.Int("m", 1, "max outstanding requests per node")
	nar := fs.Float64("nar", 0, "network access rate (0 or 1 = baseline)")
	replySpec := fs.String("reply", "", "reply model: fixed:<lat> or prob:<l2>:<mem>:<missrate>")
	kernelStatic := fs.Float64("kstatic", 0, "kernel static traffic fraction")
	kernelPeriod := fs.Int64("kperiod", 0, "kernel timer period in cycles")
	kernelBatch := fs.Int("kbatch", 0, "kernel transactions per timer interrupt")
	fo := faultFlags(fs)
	oo := obsFlags(fs, true)
	if err := fs.Parse(args); err != nil {
		return err
	}
	p.Fault = fo.build()
	reply, err := parseReply(*replySpec)
	if err != nil {
		return err
	}
	if err := oo.setup(); err != nil {
		return err
	}
	defer oo.teardown()
	if err := oo.startProfiling(); err != nil {
		return err
	}
	h := oo.hooks()
	bp := core.BatchParams{B: *b, M: *m, NAR: *nar, Reply: reply, Hooks: h}
	if *kernelStatic > 0 || *kernelPeriod > 0 {
		bp.Kernel = &closedloop.KernelConfig{
			StaticFraction: *kernelStatic,
			TimerPeriod:    *kernelPeriod,
			TimerBatch:     *kernelBatch,
		}
	}
	res, err := core.Batch(*p, bp)
	if err != nil {
		return err
	}
	if err := oo.writeOutputs(h, p.Topology); err != nil {
		return err
	}
	if err := oo.stopProfiling(); err != nil {
		return err
	}
	fmt.Printf("config: %s  b=%d m=%d nar=%g\n", p, *b, *m, *nar)
	fmt.Printf("runtime T = %d cycles (completed %v)\n", res.Runtime, res.Completed)
	fmt.Printf("achieved throughput theta = %.4f flits/cycle/node\n", res.Throughput)
	fmt.Printf("packets %d (kernel %d), avg packet latency %.2f\n",
		res.TotalPackets, res.KernelPackets, res.AvgPacketLatency)
	if res.FailedTransactions > 0 {
		fmt.Printf("failed transactions %d\n", res.FailedTransactions)
	}
	if res.Stalled {
		fmt.Printf("RUN STALLED (deadlock watchdog):\n%s", res.StallDump)
	}
	printFaultStats(res.Faults)
	return nil
}

func cmdBarrier(args []string) error {
	fs := flag.NewFlagSet("barrier", flag.ExitOnError)
	p := netFlags(fs)
	b := fs.Int("b", 1000, "packets per node per phase")
	phases := fs.Int("phases", 1, "barrier phases")
	fo := faultFlags(fs)
	oo := obsFlags(fs, false)
	if err := fs.Parse(args); err != nil {
		return err
	}
	p.Fault = fo.build()
	if err := oo.setup(); err != nil {
		return err
	}
	defer oo.teardown()
	if err := oo.startProfiling(); err != nil {
		return err
	}
	res, err := core.Barrier(*p, *b, *phases)
	if err == nil {
		err = oo.stopProfiling()
	}
	if err != nil {
		return err
	}
	fmt.Printf("config: %s  b=%d phases=%d\n", p, *b, *phases)
	fmt.Printf("runtime %d cycles, throughput %.4f flits/cycle/node\n", res.Runtime, res.Throughput)
	for i, pt := range res.PhaseRuntime {
		fmt.Printf("  phase %d: %d cycles\n", i, pt)
	}
	if res.FailedPackets > 0 {
		fmt.Printf("failed packets %d\n", res.FailedPackets)
	}
	printFaultStats(res.Faults)
	return nil
}

func cmdExec(args []string) error {
	fs := flag.NewFlagSet("exec", flag.ExitOnError)
	bench := fs.String("bench", "blackscholes", "benchmark (blackscholes, lu, canneal, fft, barnes)")
	tr := fs.Int64("tr", 1, "router delay")
	clockStr := fs.String("clock", "3ghz", "core clock (75mhz, 3ghz)")
	timer := fs.Bool("timer", false, "enable timer interrupts")
	ideal := fs.Bool("ideal", false, "use the ideal network")
	seed := fs.Uint64("seed", 7, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	clock, err := parseClock(*clockStr)
	if err != nil {
		return err
	}
	res, err := core.Exec(core.Table2Network(*tr), core.ExecParams{
		Benchmark: *bench, Clock: clock, Timer: *timer, Ideal: *ideal, Seed: *seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("benchmark %s on %s network, tr=%d, clock %s, timer %v\n",
		*bench, map[bool]string{true: "ideal", false: "4x4 mesh"}[*ideal], *tr, clock, *timer)
	fmt.Printf("runtime %d cycles, %d user + %d kernel instructions\n",
		res.Cycles, res.UserInsts, res.KernelInsts)
	fmt.Printf("flits %d (kernel %d, %.1f%%), NAR %.4f (user %.4f, kernel %.4f)\n",
		res.TotalFlits, res.KernelFlits, 100*float64(res.KernelFlits)/float64(res.TotalFlits),
		res.NAR, res.UserNAR, res.KernelNAR)
	fmt.Printf("L1 miss %.3f/%.3f (user/kernel), L2 miss %.3f/%.3f, timer interrupts %d\n",
		res.L1MissRate[0], res.L1MissRate[1], res.L2MissRate[0], res.L2MissRate[1], res.TimerInterrupts)
	return nil
}

func cmdChar(args []string) error {
	fs := flag.NewFlagSet("char", flag.ExitOnError)
	bench := fs.String("bench", "blackscholes", "benchmark")
	clockStr := fs.String("clock", "3ghz", "core clock")
	seed := fs.Uint64("seed", 7, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	clock, err := parseClock(*clockStr)
	if err != nil {
		return err
	}
	m, err := core.Characterize(*bench, clock, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("benchmark %s @ %s\n", m.Name, m.Clock)
	fmt.Printf("ideal cycles %d, total flits %d\n", m.IdealCycles, m.TotalFlits)
	fmt.Printf("NAR %.4f (user %.4f, kernel %.4f)\n", m.NAR, m.UserNAR, m.KernelNAR)
	fmt.Printf("L2 miss %.3f (kernel %.3f)\n", m.L2Miss, m.KernelL2Miss)
	fmt.Printf("static kernel fraction %.3f, timer period %d cycles, timer batch %d\n",
		m.StaticKernelFrac, m.TimerPeriod, m.TimerBatch)
	return nil
}
