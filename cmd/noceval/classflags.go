package main

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"noceval/internal/core"
	"noceval/internal/openloop"
	"noceval/internal/traffic"
	"noceval/internal/workload"
)

// classOpts gathers the QoS traffic-class flags shared by the open-loop
// subcommands. All flags default to "off"; apply leaves the parameters
// untouched when none was given, so class-free invocations produce the
// exact pre-QoS parameter schema (and cache keys).
type classOpts struct {
	classes []core.ClassSpec
	mix     string
	arb     string
}

// classFlags registers the QoS class flags on a subcommand's flag set.
func classFlags(fs *flag.FlagSet) *classOpts {
	o := &classOpts{}
	fs.Func("class", "QoS class name:share[:pattern[:sizes]] in priority order, highest first (repeatable)", func(s string) error {
		parts := strings.Split(s, ":")
		if len(parts) < 2 || len(parts) > 4 {
			return fmt.Errorf("want name:share[:pattern[:sizes]], got %q", s)
		}
		share, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return fmt.Errorf("bad share in %q: %v", s, err)
		}
		cs := core.ClassSpec{Name: parts[0], Share: share}
		if len(parts) > 2 {
			cs.Pattern = parts[2]
		}
		if len(parts) > 3 {
			cs.Sizes = parts[3]
		}
		o.classes = append(o.classes, cs)
		return nil
	})
	fs.StringVar(&o.mix, "class-mix", "",
		"named QoS class preset ("+strings.Join(workload.QoSMixNames(), ", ")+"); mutually exclusive with -class")
	fs.StringVar(&o.arb, "class-arb", "", "cross-class arbitration: strict (default) or classrr")
	return o
}

// sizeSpecName maps a preset's size distribution back to its spec name.
func sizeSpecName(sd traffic.SizeDist) string {
	switch sd.(type) {
	case traffic.FixedSize:
		return "single"
	case traffic.Bimodal:
		return "bimodal"
	}
	return sd.Name()
}

// apply folds the class flags into the network parameters; with every flag
// at its default the parameters are left untouched.
func (o *classOpts) apply(p *core.NetworkParams) error {
	if o.mix != "" {
		if len(o.classes) > 0 {
			return fmt.Errorf("-class and -class-mix are mutually exclusive")
		}
		mix, err := workload.QoSMixByName(o.mix)
		if err != nil {
			return err
		}
		for _, cl := range mix {
			o.classes = append(o.classes, core.ClassSpec{
				Name:    cl.Name,
				Share:   cl.Share,
				Pattern: cl.Pattern.Name(),
				Sizes:   sizeSpecName(cl.Sizes),
			})
		}
	}
	if len(o.classes) == 0 {
		if o.arb != "" {
			return fmt.Errorf("-class-arb needs QoS classes (-class or -class-mix)")
		}
		return nil
	}
	p.Classes = o.classes
	p.ClassArb = o.arb
	return nil
}

// printPerClass renders the per-class results of a multi-class run.
func printPerClass(per []openloop.ClassResult) {
	if len(per) == 0 {
		return
	}
	fmt.Printf("%12s %7s %12s %8s %8s %10s %9s %9s\n",
		"class", "share", "avg latency", "p95", "p99", "accepted", "injected", "delivered")
	for _, cr := range per {
		fmt.Printf("%12s %7.2f %12.2f %8.1f %8.1f %10.3f %9d %9d\n",
			cr.Name, cr.Share, cr.AvgLatency, cr.P95, cr.P99, cr.Accepted, cr.Injected, cr.Delivered)
	}
}
