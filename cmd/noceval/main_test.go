package main

import (
	"testing"

	"noceval/internal/closedloop"
	"noceval/internal/workload"
)

func TestParseReply(t *testing.T) {
	m, err := parseReply("")
	if err != nil || m != nil {
		t.Errorf("empty spec: %v, %v", m, err)
	}
	m, err = parseReply("fixed:25")
	if err != nil {
		t.Fatal(err)
	}
	if f, ok := m.(closedloop.FixedReply); !ok || f.Latency != 25 {
		t.Errorf("fixed spec parsed to %#v", m)
	}
	m, err = parseReply("prob:20:300:0.1")
	if err != nil {
		t.Fatal(err)
	}
	if p, ok := m.(closedloop.ProbabilisticReply); !ok || p.L2Latency != 20 || p.MemoryLatency != 300 || p.MissRate != 0.1 {
		t.Errorf("prob spec parsed to %#v", m)
	}
	for _, bad := range []string{"fixed", "fixed:x", "prob:1:2", "prob:a:b:c", "magic:1"} {
		if _, err := parseReply(bad); err == nil {
			t.Errorf("bad spec %q accepted", bad)
		}
	}
}

func TestParseClock(t *testing.T) {
	for s, want := range map[string]workload.Clock{
		"":      workload.Clock3GHz,
		"3ghz":  workload.Clock3GHz,
		"3GHz":  workload.Clock3GHz,
		"75mhz": workload.Clock75MHz,
		"75MHz": workload.Clock75MHz,
	} {
		got, err := parseClock(s)
		if err != nil || got != want {
			t.Errorf("parseClock(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := parseClock("1thz"); err == nil {
		t.Error("bad clock accepted")
	}
}
