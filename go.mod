module noceval

go 1.22
