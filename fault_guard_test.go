package noceval

// Guards for the fault subsystem's disabled path: with no fault config,
// the injector must be compiled out of the per-cycle hot path — Step
// performs zero heap allocations (same bar as the observability guard),
// and a faulted network pays its bookkeeping only when faults are enabled.

import (
	"testing"

	"noceval/internal/fault"
	"noceval/internal/network"
	"noceval/internal/router"
	"noceval/internal/routing"
	"noceval/internal/topology"
)

// TestFaultDisabledStepZeroAllocs pins the zero-fault guarantee: a network
// built without fault parameters steps with zero heap allocations — the
// fault layer adds no per-cycle work to fault-free runs.
func TestFaultDisabledStepZeroAllocs(t *testing.T) {
	net := loadedNetwork(t, nil, 400, 500)
	if net.FaultStats() != nil {
		t.Fatal("fault layer active on a fault-free network")
	}
	allocs := testing.AllocsPerRun(200, func() {
		net.Step()
	})
	if allocs != 0 {
		t.Errorf("fault-free Step allocates %.2f allocs/op, want 0", allocs)
	}
	if flits, _, _, _ := net.Stats(); flits == 0 {
		t.Fatal("network was idle during the measurement")
	}
}

// TestFaultEnabledSteadyStateZeroAllocs holds the faulted hot path to the
// same bar once warmed up: rate-based draws, schedule checks, and NIC
// bookkeeping run allocation-free in steady state (retransmissions
// allocate — packets always do — so the drop rate here is zero and only
// corruption, which clones nothing, is enabled).
func TestFaultEnabledSteadyStateZeroAllocs(t *testing.T) {
	cfg := network.Config{
		Topo:    topology.NewMesh(4, 4),
		Routing: routing.DOR{},
		Router:  router.Config{VCs: 8, BufDepth: 4, Delay: 1},
		Seed:    5,
		Fault:   &fault.Params{CorruptRate: 1e-3, Seed: 17},
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	net := network.New(cfg)
	fill(net, 400)
	for i := 0; i < 500; i++ {
		net.Step()
	}
	allocs := testing.AllocsPerRun(200, func() {
		net.Step()
	})
	if allocs != 0 {
		t.Errorf("faulted steady-state Step allocates %.2f allocs/op, want 0", allocs)
	}
}
