#!/usr/bin/env bash
# serve-smoke: end-to-end exercise of the experiment service.
#
# Builds nocd and nocload, boots nocd with the experiment cache and run
# ledger enabled, then drives three load phases:
#
#   1. prime   — submit a fast spec once and wait, filling the cache
#   2. coalesce — burst ~20 identical slow-spec submissions; all but one
#                 must coalesce onto the single in-flight job
#   3. cached  — replay the fast spec at 200 req/s for 3s; the server
#                must sustain >= MIN_RPS because every job is answered
#                from the content-addressed cache
#
# Afterwards it scrapes /metrics and asserts the coalesce and cache-hit
# counters moved, checks the ledger recorded runs, and finally SIGTERMs
# the server and requires a clean drain ("shut down cleanly").
set -euo pipefail
cd "$(dirname "$0")/.."

MIN_RPS=${MIN_RPS:-100}
tmp=$(mktemp -d)
nocd_pid=""
cleanup() {
  [ -n "$nocd_pid" ] && kill -9 "$nocd_pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

echo "== serve-smoke: building nocd and nocload =="
go build -o "$tmp/nocd" ./cmd/nocd
go build -o "$tmp/nocload" ./cmd/nocload

# A fast spec (cached instantly on repeat) and a slow one (in flight long
# enough for a burst of twins to coalesce onto it).
cat >"$tmp/fast.json" <<'EOF'
{"kind":"openloop","network":{"Topology":"mesh4x4","VCs":2,"BufDepth":16,"RouterDelay":1,"Routing":"dor","Arb":"rr","Pattern":"uniform","Sizes":"single","Seed":11},"rate":0.1,"warmup":200,"measure":100000,"drainLimit":50000}
EOF
cat >"$tmp/slow.json" <<'EOF'
{"kind":"openloop","network":{"Topology":"mesh4x4","VCs":2,"BufDepth":16,"RouterDelay":1,"Routing":"dor","Arb":"rr","Pattern":"uniform","Sizes":"single","Seed":12},"rate":0.1,"warmup":200,"measure":3000000,"drainLimit":50000}
EOF

echo "== serve-smoke: starting nocd =="
"$tmp/nocd" -addr 127.0.0.1:0 -cache -cache-dir "$tmp/expcache" \
  -ledger "$tmp/runs.jsonl" >"$tmp/nocd.log" 2>&1 &
nocd_pid=$!

addr=""
for _ in $(seq 1 50); do
  addr=$(sed -n 's|^nocd listening on \(http://.*\)$|\1|p' "$tmp/nocd.log")
  [ -n "$addr" ] && break
  kill -0 "$nocd_pid" 2>/dev/null || { cat "$tmp/nocd.log"; echo "serve-smoke: nocd died on startup"; exit 1; }
  sleep 0.1
done
[ -n "$addr" ] || { cat "$tmp/nocd.log"; echo "serve-smoke: nocd never reported its address"; exit 1; }
echo "   nocd at $addr (pid $nocd_pid)"

echo "== serve-smoke: phase 1 — prime the cache =="
"$tmp/nocload" -addr "$addr" -spec "$tmp/fast.json" -rps 10 -duration 0.3s -wait

echo "== serve-smoke: phase 2 — coalescing burst (identical slow spec) =="
"$tmp/nocload" -addr "$addr" -spec "$tmp/slow.json" -rps 40 -duration 0.5s -wait

echo "== serve-smoke: phase 3 — cached throughput gate (>= ${MIN_RPS} req/s) =="
"$tmp/nocload" -addr "$addr" -spec "$tmp/fast.json" -rps 200 -duration 3s \
  -wait -min-rps "$MIN_RPS"

echo "== serve-smoke: checking /metrics counters =="
curl -fsS "$addr/metrics" >"$tmp/metrics.txt"
metric() { awk -v m="$1" '$1 == m { print $2 }' "$tmp/metrics.txt"; }
coalesced=$(metric service_jobs_coalesced)
cache_hits=$(metric expcache_hits)
submitted=$(metric service_jobs_submitted)
done_jobs=$(metric service_jobs_done)
echo "   jobs_submitted=$submitted jobs_done=$done_jobs jobs_coalesced=$coalesced expcache_hits=$cache_hits"
[ -n "$coalesced" ] && [ "$coalesced" -ge 1 ] || {
  echo "serve-smoke: expected service_jobs_coalesced >= 1 (got '${coalesced:-missing}')"; exit 1; }
[ -n "$cache_hits" ] && [ "$cache_hits" -ge 1 ] || {
  echo "serve-smoke: expected expcache_hits >= 1 (got '${cache_hits:-missing}')"; exit 1; }

ledger_runs=$(wc -l <"$tmp/runs.jsonl")
[ "$ledger_runs" -ge 1 ] || { echo "serve-smoke: ledger is empty"; exit 1; }
echo "   ledger recorded $ledger_runs run(s)"

echo "== serve-smoke: SIGTERM drain =="
kill -TERM "$nocd_pid"
for _ in $(seq 1 100); do
  kill -0 "$nocd_pid" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$nocd_pid" 2>/dev/null; then
  cat "$tmp/nocd.log"
  echo "serve-smoke: nocd did not exit within 10s of SIGTERM"
  exit 1
fi
wait "$nocd_pid" 2>/dev/null || true
nocd_pid=""
grep -q "shut down cleanly" "$tmp/nocd.log" || {
  cat "$tmp/nocd.log"; echo "serve-smoke: no clean-shutdown message"; exit 1; }

echo "serve-smoke: OK"
