package noceval

// Guards for the observability layer's disabled path: with no observer
// attached, the per-cycle hot path (Network.Step and everything under it)
// must not allocate at all, and the enabled/disabled benchmark pair makes
// any cycles/sec regression visible from `go test -bench Step`. The same
// contract covers the cross-run layer: with no process-wide registry
// installed and no ledger enabled, the engine loop, the nil instruments,
// and the nil ledger must all stay allocation-free.

import (
	"testing"
	"time"

	"noceval/internal/core"
	"noceval/internal/engine"
	"noceval/internal/network"
	"noceval/internal/obs"
	"noceval/internal/obs/ledger"
	"noceval/internal/router"
	"noceval/internal/service"
)

// loadedNetwork builds a mesh4x4 network with deep source queues and a
// warmed-up steady state, so stepping it exercises the full
// deliver/inject/route/VA/SA path without any further Sends.
func loadedNetwork(tb testing.TB, o *obs.Observer, queued, warmup int) *network.Network {
	tb.Helper()
	cfg, err := core.Table2Network(1).Build()
	if err != nil {
		tb.Fatal(err)
	}
	net := network.New(cfg)
	net.AttachObserver(o)
	fill(net, queued)
	for i := 0; i < warmup; i++ {
		net.Step()
	}
	return net
}

// fill queues count single-flit packets at every node, each to a distinct
// non-local destination, spreading traffic across the mesh.
func fill(net *network.Network, count int) {
	n := net.Nodes()
	for i := 0; i < count; i++ {
		for src := 0; src < n; src++ {
			dst := (src + 1 + i%(n-1)) % n
			net.Send(net.NewPacket(src, dst, 1, router.KindData))
		}
	}
}

// TestObsDisabledStepZeroAllocs pins the disabled-path guarantee: once the
// network reaches steady state, Step performs zero heap allocations when
// no observer is attached.
func TestObsDisabledStepZeroAllocs(t *testing.T) {
	net := loadedNetwork(t, nil, 400, 500)
	if net.Observer() != nil {
		t.Fatal("observer attached on the disabled path")
	}
	allocs := testing.AllocsPerRun(200, func() {
		net.Step()
	})
	if allocs != 0 {
		t.Errorf("disabled-path Step allocates %.2f allocs/op, want 0", allocs)
	}
	if flits, _, _, _ := net.Stats(); flits == 0 {
		t.Fatal("network was idle during the measurement")
	}
}

// stepDriver is a minimal engine driver that steps forever (the guard
// stops the engine via Deadline).
type stepDriver struct{}

func (stepDriver) Cycle(int64)           {}
func (stepDriver) Done(int64) bool       { return false }
func (stepDriver) Idle(int64) bool       { return false }
func (stepDriver) NextEvent(int64) int64 { return engine.NoEvent }

// TestCrossRunObsDisabledZeroAllocs pins the disabled path of the
// cross-run observability added for the run ledger and live export: with
// no default registry installed, nil counters/gauges, a nil ledger, and
// the engine loop's per-cycle metric accounting must not allocate.
func TestCrossRunObsDisabledZeroAllocs(t *testing.T) {
	if obs.Default() != nil {
		t.Fatal("a default registry is installed; the disabled path is not under test")
	}

	t.Run("nil instruments", func(t *testing.T) {
		reg := obs.Default() // nil
		c := reg.Counter("engine.cycles_stepped")
		g := reg.Gauge("par.queue_depth")
		var l *ledger.Ledger
		var p *obs.Progress
		allocs := testing.AllocsPerRun(200, func() {
			c.Inc()
			c.Add(17)
			g.Set(3.5)
			p.Skip(100)
			l.Append(ledger.Record{Kind: "openloop"})
		})
		if allocs != 0 {
			t.Errorf("disabled instruments allocate %.2f allocs/op, want 0", allocs)
		}
	})

	t.Run("http endpoint metrics", func(t *testing.T) {
		// The experiment service instruments every endpoint; a nocd built
		// without a registry (impossible today, but the nil path is the
		// contract) must not pay for it, and neither must any future
		// caller holding nil EndpointMetrics.
		em := service.NewEndpointMetrics(nil, "submit")
		var nilEM *service.EndpointMetrics
		g := (*obs.Gauge)(nil)
		start := time.Now()
		allocs := testing.AllocsPerRun(200, func() {
			em.Begin()
			em.End(start)
			nilEM.Begin()
			nilEM.End(start)
			g.Add(2)
		})
		if allocs != 0 {
			t.Errorf("disabled endpoint metrics allocate %.2f allocs/op, want 0", allocs)
		}
	})

	t.Run("engine loop", func(t *testing.T) {
		net := loadedNetwork(t, nil, 400, 500)
		var now int64 = 1 << 20 // beyond the warmed-up clock
		allocs := testing.AllocsPerRun(50, func() {
			now += 8
			engine.RunOutcome(engine.Config{Net: net, Deadline: now}, stepDriver{})
		})
		if allocs != 0 {
			t.Errorf("disabled-path engine loop allocates %.2f allocs/op, want 0", allocs)
		}
	})
}

// benchSteps measures steady-state Step throughput, periodically refilling
// the source queues outside the timer so the network stays loaded however
// large b.N gets.
func benchSteps(b *testing.B, o *obs.Observer) {
	net := loadedNetwork(b, o, 400, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%4096 == 0 {
			b.StopTimer()
			fill(net, 300)
			b.StartTimer()
		}
		net.Step()
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "sim-cycles/s")
}

// BenchmarkStepObsDisabled is the baseline: no observer attached. Its
// allocs/op must stay 0.
func BenchmarkStepObsDisabled(b *testing.B) {
	benchSteps(b, nil)
}

// BenchmarkStepObsEnabled steps the same load with metrics, telemetry
// sampling, and flit tracing all on, for a direct overhead comparison.
func BenchmarkStepObsEnabled(b *testing.B) {
	benchSteps(b, obs.NewObserver(obs.Options{Metrics: true, Trace: true, SampleEvery: 100}))
}
