package noceval

// One benchmark per paper table/figure: each exercises the exact code path
// that regenerates it (cmd/figures produces the full data series; these
// run scaled-down versions and report the headline metric via
// b.ReportMetric so regressions in either performance or *results* are
// visible from `go test -bench`).

import (
	"fmt"
	"runtime"
	"testing"

	"noceval/internal/closedloop"
	"noceval/internal/core"
	"noceval/internal/openloop"
	"noceval/internal/stats"
	"noceval/internal/workload"
)

// quickOpenLoop runs a short open-loop measurement.
func quickOpenLoop(b *testing.B, p core.NetworkParams, rate float64) *openloop.Result {
	b.Helper()
	cfg, err := p.Build()
	if err != nil {
		b.Fatal(err)
	}
	pat, _ := p.BuildPattern()
	sizes, _ := p.BuildSizes()
	res, err := openloop.Run(openloop.Config{
		Net: cfg, Pattern: pat, Sizes: sizes, Rate: rate,
		Warmup: 1000, Measure: 2000, DrainLimit: 20000, Seed: p.Seed,
	})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

func quickBatch(b *testing.B, p core.NetworkParams, bp core.BatchParams) *closedloop.BatchResult {
	b.Helper()
	if bp.B == 0 {
		bp.B = 150
	}
	res, err := core.Batch(p, bp)
	if err != nil {
		b.Fatal(err)
	}
	if !res.Completed {
		b.Fatal("batch did not complete")
	}
	return res
}

// BenchmarkFig01 measures one point of the latency/load curve.
func BenchmarkFig01_LatencyLoadCurve(b *testing.B) {
	var lat float64
	for i := 0; i < b.N; i++ {
		lat = quickOpenLoop(b, core.Baseline(), 0.2).AvgLatency
	}
	b.ReportMetric(lat, "avg-latency-cycles")
}

// BenchmarkFig02 measures batch runtime scaling over b.
func BenchmarkFig02_BatchSizeScaling(b *testing.B) {
	var norm float64
	for i := 0; i < b.N; i++ {
		res := quickBatch(b, core.Baseline(), core.BatchParams{B: 1000, M: 4})
		norm = float64(res.Runtime) / 1000
	}
	b.ReportMetric(norm, "runtime-per-request")
}

// BenchmarkFig03 measures the open-loop router-delay latency ratio.
func BenchmarkFig03_RouterDelayOpenLoop(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		p1 := core.Baseline()
		p2 := core.Baseline()
		p2.RouterDelay = 2
		ratio = quickOpenLoop(b, p2, 0.05).AvgLatency / quickOpenLoop(b, p1, 0.05).AvgLatency
	}
	b.ReportMetric(ratio, "tr2-tr1-latency-ratio") // paper: ~1.5
}

// BenchmarkFig04 measures the batch-model router-delay runtime ratio.
func BenchmarkFig04_RouterDelayBatch(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		p2 := core.Baseline()
		p2.RouterDelay = 2
		r1 := quickBatch(b, core.Baseline(), core.BatchParams{M: 1})
		r2 := quickBatch(b, p2, core.BatchParams{M: 1})
		ratio = float64(r2.Runtime) / float64(r1.Runtime)
	}
	b.ReportMetric(ratio, "tr2-tr1-runtime-ratio") // paper: ~1.45
}

// BenchmarkFig05 runs the open-loop/batch correlation procedure.
func BenchmarkFig05_OpenBatchCorrelation(b *testing.B) {
	var coeff float64
	for i := 0; i < b.N; i++ {
		corr, err := core.CorrelateOpenBatch([]int{1, 4}, []string{"tr=1", "tr=2", "tr=4"},
			func(j int) core.NetworkParams {
				p := core.Baseline()
				p.RouterDelay = []int64{1, 2, 4}[j]
				return p
			}, 150, false)
		if err != nil {
			b.Fatal(err)
		}
		coeff = corr.Coefficient
	}
	b.ReportMetric(coeff, "correlation") // paper: 0.9953
}

// BenchmarkFig06 compares topologies in the batch model.
func BenchmarkFig06_TopologyBatch(b *testing.B) {
	var ringOverMesh float64
	for i := 0; i < b.N; i++ {
		mesh := core.Baseline()
		ring := core.Baseline()
		ring.Topology = "ring64"
		rm := quickBatch(b, mesh, core.BatchParams{M: 8})
		rr := quickBatch(b, ring, core.BatchParams{M: 8})
		ringOverMesh = float64(rr.Runtime) / float64(rm.Runtime)
	}
	b.ReportMetric(ringOverMesh, "ring-mesh-runtime-ratio") // > 1
}

// BenchmarkFig07 measures the mesh's center/edge finish-time skew.
func BenchmarkFig07_PerNodeRuntime(b *testing.B) {
	var skew float64
	for i := 0; i < b.N; i++ {
		res := quickBatch(b, core.Baseline(), core.BatchParams{M: 1})
		finishes := make([]float64, len(res.NodeFinish))
		for j, t := range res.NodeFinish {
			finishes[j] = float64(t)
		}
		skew = stats.Max(finishes) / stats.Min(finishes)
	}
	b.ReportMetric(skew, "worst-best-node-ratio") // mesh: noticeably > 1
}

// BenchmarkFig08 runs the worst-case topology correlation.
func BenchmarkFig08_TopologyCorrelation(b *testing.B) {
	var coeff float64
	for i := 0; i < b.N; i++ {
		names := []string{"mesh8x8", "torus8x8", "ring64"}
		corr, err := core.CorrelateOpenBatch([]int{1, 4}, names,
			func(j int) core.NetworkParams {
				p := core.Baseline()
				p.Topology = names[j]
				return p
			}, 150, true)
		if err != nil {
			b.Fatal(err)
		}
		coeff = corr.Coefficient
	}
	b.ReportMetric(coeff, "correlation") // paper: 0.999
}

// BenchmarkFig09 measures VAL's zero-load penalty under uniform traffic.
func BenchmarkFig09_RoutingOpenLoop(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		dor := core.Baseline()
		dor.VCs = 4
		val := dor
		val.Routing = "val"
		ratio = quickOpenLoop(b, val, 0.05).AvgLatency / quickOpenLoop(b, dor, 0.05).AvgLatency
	}
	b.ReportMetric(ratio, "val-dor-latency-ratio") // ~2 (doubled path length)
}

// BenchmarkFig10 measures the batch model's view of VAL under transpose.
func BenchmarkFig10_RoutingBatch(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		dor := core.Baseline()
		dor.VCs = 4
		dor.Pattern = "transpose"
		val := dor
		val.Routing = "val"
		rd := quickBatch(b, dor, core.BatchParams{M: 1})
		rv := quickBatch(b, val, core.BatchParams{M: 1})
		ratio = float64(rv.Runtime) / float64(rd.Runtime)
	}
	// Paper: only ~1.7% difference — worst-case nodes route minimally
	// under both algorithms.
	b.ReportMetric(ratio, "val-dor-runtime-ratio")
}

// BenchmarkFig11 builds the per-node runtime distribution.
func BenchmarkFig11_NodeDistributions(b *testing.B) {
	var spread float64
	for i := 0; i < b.N; i++ {
		p := core.Baseline()
		p.VCs = 4
		p.Pattern = "transpose"
		res := quickBatch(b, p, core.BatchParams{M: 1})
		finishes := make([]float64, len(res.NodeFinish))
		for j, t := range res.NodeFinish {
			finishes[j] = float64(t)
		}
		h := stats.NewHistogram(0, stats.Max(finishes)+1, 8)
		h.AddAll(finishes)
		spread = stats.Max(finishes) - stats.Min(finishes)
	}
	b.ReportMetric(spread, "finish-spread-cycles")
}

// BenchmarkFig13 collects the lu traffic matrices.
func BenchmarkFig13_TrafficMatrix(b *testing.B) {
	var uniformity float64
	for i := 0; i < b.N; i++ {
		res, err := core.Exec(core.Table2Network(1), core.ExecParams{
			Benchmark: "lu", CollectMatrix: true, Seed: 7,
		})
		if err != nil {
			b.Fatal(err)
		}
		// Coefficient of variation of the actual-traffic matrix: low =
		// near-uniform (the paper's justification for uniform traffic).
		s := stats.Summarize(res.Matrix.Cells)
		uniformity = s.Std / s.Mean
	}
	b.ReportMetric(uniformity, "traffic-matrix-cv")
}

// BenchmarkFig14 runs one execution-driven tr sweep point.
func BenchmarkFig14_ExecRouterDelay(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		norm, err := core.ExecSweep("fft", []int64{1, 8}, core.ExecParams{Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
		ratio = norm[1]
	}
	b.ReportMetric(ratio, "tr8-tr1-exec-ratio") // paper fft: 1.51
}

// BenchmarkFig15 computes the baseline batch/exec correlation.
func BenchmarkFig15_BaselineCorrelation(b *testing.B) {
	var coeff float64
	for i := 0; i < b.N; i++ {
		benches := []string{"blackscholes", "fft"}
		trs := []int64{1, 4}
		execNorm := map[string][]float64{}
		for _, name := range benches {
			n, err := core.ExecSweep(name, trs, core.ExecParams{Seed: 7})
			if err != nil {
				b.Fatal(err)
			}
			execNorm[name] = n
		}
		ba, err := core.BatchSweep(trs, core.BatchParams{B: 150, M: 1})
		if err != nil {
			b.Fatal(err)
		}
		batch := map[string][]float64{}
		for _, name := range benches {
			batch[name] = ba
		}
		corr, err := core.CorrelateExecBatch(benches, trs, execNorm, batch)
		if err != nil {
			b.Fatal(err)
		}
		coeff = corr.Coefficient
	}
	b.ReportMetric(coeff, "correlation")
}

// BenchmarkFig16 measures NAR's damping of the router-delay effect.
func BenchmarkFig16_NARInjectionModel(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		p4 := core.Baseline()
		p4.RouterDelay = 4
		slow := quickBatch(b, p4, core.BatchParams{M: 16, NAR: 0.04})
		fast := quickBatch(b, core.Baseline(), core.BatchParams{M: 16, NAR: 0.04})
		ratio = float64(slow.Runtime) / float64(fast.Runtime)
	}
	b.ReportMetric(ratio, "tr4-tr1-ratio-at-low-nar") // ~1: NAR hides tr
}

// BenchmarkFig17 measures the reply model's damping of the router-delay
// effect.
func BenchmarkFig17_ReplyModel(b *testing.B) {
	var ratio float64
	reply := closedloop.ProbabilisticReply{L2Latency: 20, MemoryLatency: 300, MissRate: 0.1}
	for i := 0; i < b.N; i++ {
		p4 := core.Baseline()
		p4.RouterDelay = 4
		slow := quickBatch(b, p4, core.BatchParams{M: 1, Reply: reply})
		fast := quickBatch(b, core.Baseline(), core.BatchParams{M: 1, Reply: reply})
		ratio = float64(slow.Runtime) / float64(fast.Runtime)
	}
	b.ReportMetric(ratio, "tr4-tr1-ratio-with-memory") // << 2.4 (undamped)
}

// BenchmarkFig18 runs one enhanced-variant batch sweep.
func BenchmarkFig18_EnhancedVariants(b *testing.B) {
	model, err := core.Characterize("lu", workload.Clock3GHz, 7)
	if err != nil {
		b.Fatal(err)
	}
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		norm, err := core.BatchSweep([]int64{1, 8}, model.BatchParams(150, 1, core.BAInjRe))
		if err != nil {
			b.Fatal(err)
		}
		ratio = norm[1]
	}
	b.ReportMetric(ratio, "tr8-tr1-enhanced-ratio")
}

// BenchmarkFig19 computes an enhanced-model correlation.
func BenchmarkFig19_EnhancedCorrelation(b *testing.B) {
	var coeff float64
	for i := 0; i < b.N; i++ {
		benches := []string{"blackscholes", "fft"}
		trs := []int64{1, 4}
		execNorm := map[string][]float64{}
		batch := map[string][]float64{}
		for _, name := range benches {
			n, err := core.ExecSweep(name, trs, core.ExecParams{Seed: 7})
			if err != nil {
				b.Fatal(err)
			}
			execNorm[name] = n
			m, err := core.Characterize(name, workload.Clock3GHz, 7)
			if err != nil {
				b.Fatal(err)
			}
			bn, err := core.BatchSweep(trs, m.BatchParams(150, 1, core.BAInjRe))
			if err != nil {
				b.Fatal(err)
			}
			batch[name] = bn
		}
		corr, err := core.CorrelateExecBatch(benches, trs, execNorm, batch)
		if err != nil {
			b.Fatal(err)
		}
		coeff = corr.Coefficient
	}
	b.ReportMetric(coeff, "correlation")
}

// BenchmarkFig20 measures the kernel traffic share at 75 MHz.
func BenchmarkFig20_KernelShare(b *testing.B) {
	var share float64
	for i := 0; i < b.N; i++ {
		res, err := core.Exec(core.Table2Network(1), core.ExecParams{
			Benchmark: "lu", Clock: workload.Clock75MHz, Timer: true, Seed: 7,
		})
		if err != nil {
			b.Fatal(err)
		}
		share = float64(res.KernelFlits) / float64(res.TotalFlits)
	}
	b.ReportMetric(share, "kernel-traffic-share") // paper lu: > 0.8 at 75MHz
}

// BenchmarkFig21 records the injection timeline.
func BenchmarkFig21_InjectionTimeline(b *testing.B) {
	var buckets float64
	for i := 0; i < b.N; i++ {
		res, err := core.Exec(core.Table2Network(1), core.ExecParams{
			Benchmark: "blackscholes", Clock: workload.Clock75MHz, Timer: true,
			SampleInterval: 1000, Seed: 7,
		})
		if err != nil {
			b.Fatal(err)
		}
		buckets = float64(len(res.Timeline))
	}
	b.ReportMetric(buckets, "timeline-buckets")
}

// BenchmarkFig22 compares correlations with and without the OS model.
func BenchmarkFig22_OSModelCorrelation(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		benches := []string{"blackscholes", "lu"}
		trs := []int64{1, 4}
		execNorm := map[string][]float64{}
		withOS := map[string][]float64{}
		withoutOS := map[string][]float64{}
		for _, name := range benches {
			n, err := core.ExecSweep(name, trs, core.ExecParams{
				Clock: workload.Clock75MHz, Timer: true, Seed: 7,
			})
			if err != nil {
				b.Fatal(err)
			}
			execNorm[name] = n
			m, err := core.Characterize(name, workload.Clock75MHz, 7)
			if err != nil {
				b.Fatal(err)
			}
			on, err := core.BatchSweep(trs, m.BatchParams(150, 1, core.BAInjReOS))
			if err != nil {
				b.Fatal(err)
			}
			withOS[name] = on
			noOS := *m
			noOS.TimerPeriod, noOS.TimerBatch = 0, 0
			off, err := core.BatchSweep(trs, noOS.BatchParams(150, 1, core.BAInjRe))
			if err != nil {
				b.Fatal(err)
			}
			withoutOS[name] = off
		}
		cOn, err := core.CorrelateExecBatch(benches, trs, execNorm, withOS)
		if err != nil {
			b.Fatal(err)
		}
		cOff, err := core.CorrelateExecBatch(benches, trs, execNorm, withoutOS)
		if err != nil {
			b.Fatal(err)
		}
		gain = cOn.Coefficient - cOff.Coefficient
	}
	b.ReportMetric(gain, "correlation-gain-from-os-model")
}

// BenchmarkTable3 runs the NAR characterization.
func BenchmarkTable3_NARCharacterization(b *testing.B) {
	var nar float64
	for i := 0; i < b.N; i++ {
		m, err := core.Characterize("barnes", workload.Clock3GHz, 7)
		if err != nil {
			b.Fatal(err)
		}
		nar = m.NAR
	}
	b.ReportMetric(nar, "nar")
}

// BenchmarkTable4 measures the 75 MHz benchmark characteristics.
func BenchmarkTable4_BenchmarkCharacteristics(b *testing.B) {
	var static float64
	for i := 0; i < b.N; i++ {
		m, err := core.Characterize("blackscholes", workload.Clock75MHz, 7)
		if err != nil {
			b.Fatal(err)
		}
		static = m.StaticKernelFrac
	}
	b.ReportMetric(static, "static-kernel-fraction")
}

// BenchmarkNetworkThroughput measures raw simulator speed: cycles per
// second on a saturated 8x8 mesh (not a paper figure; a performance
// baseline for the simulator itself).
func BenchmarkNetworkThroughput(b *testing.B) {
	p := core.Baseline()
	cfg, err := p.Build()
	if err != nil {
		b.Fatal(err)
	}
	pat, _ := p.BuildPattern()
	sizes, _ := p.BuildSizes()
	b.ResetTimer()
	var cycles int64
	for i := 0; i < b.N; i++ {
		res, err := openloop.Run(openloop.Config{
			Net: cfg, Pattern: pat, Sizes: sizes, Rate: 0.35,
			Warmup: 500, Measure: 2000, DrainLimit: 10000, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		cycles += 2500
		_ = res
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim-cycles/s")
}

// benchIdleOpenLoop runs an open-loop measurement at ~5% of the 8x8 mesh's
// saturation load: the network is almost entirely idle, so wall-clock is
// dominated by how cheaply empty routers are skipped.
func benchIdleOpenLoop(b *testing.B, fullScan bool) {
	b.Helper()
	p := core.Baseline()
	cfg, err := p.Build()
	if err != nil {
		b.Fatal(err)
	}
	pat, _ := p.BuildPattern()
	sizes, _ := p.BuildSizes()
	b.ResetTimer()
	var cycles int64
	for i := 0; i < b.N; i++ {
		res, err := openloop.Run(openloop.Config{
			Net: cfg, Pattern: pat, Sizes: sizes, Rate: 0.02,
			Warmup: 500, Measure: 5000, DrainLimit: 10000, Seed: 1,
			FullScan: fullScan,
		})
		if err != nil {
			b.Fatal(err)
		}
		cycles += 5500
		_ = res
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim-cycles/s")
}

// BenchmarkIdleOpenLoopLowLoad compares the legacy full-scan cycle loop
// against the activity-tracked loop on a low-load (5% of saturation) 8x8
// mesh. Open-loop sources draw from the RNG every cycle, so no cycles can
// be skipped outright; the speedup comes purely from stepping only active
// routers.
func BenchmarkIdleOpenLoopLowLoad(b *testing.B) {
	b.Run("engine=fullscan", func(b *testing.B) { benchIdleOpenLoop(b, true) })
	b.Run("engine=activeset", func(b *testing.B) { benchIdleOpenLoop(b, false) })
}

// benchIdleBatchTail runs a batch workload whose runtime is dominated by
// idle waiting: a tight MSHR limit and a long fixed reply latency leave the
// network empty for most of each ~1000-cycle request/reply round trip.
func benchIdleBatchTail(b *testing.B, fullScan bool) {
	b.Helper()
	p := core.Baseline()
	cfg, err := p.Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var cycles int64
	for i := 0; i < b.N; i++ {
		res, err := closedloop.RunBatch(closedloop.BatchConfig{
			Net: cfg, B: 32, M: 1, Seed: 1,
			Reply:     closedloop.FixedReply{Latency: 1000},
			MaxCycles: 5_000_000,
			FullScan:  fullScan,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Completed {
			b.Fatal("batch did not complete")
		}
		cycles += res.Runtime
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim-cycles/s")
}

// BenchmarkIdleBatchTail compares full-scan against active-set + quiescence
// fast-forward on an idle-heavy closed-loop run: with m=1 and a 1000-cycle
// reply latency every node spends ~99% of its time waiting, which the
// engine skips in O(1) jumps.
func BenchmarkIdleBatchTail(b *testing.B) {
	b.Run("engine=fullscan", func(b *testing.B) { benchIdleBatchTail(b, true) })
	b.Run("engine=activeset", func(b *testing.B) { benchIdleBatchTail(b, false) })
}

// benchShardScaling runs a heavily loaded 16x16 mesh open-loop measurement
// with the network split into the given number of spatial tiles. The rate
// sits just under the uniform-traffic saturation point (~0.25 flits/node/
// cycle for a 16x16 mesh), so every router has work each cycle but the
// drain phase still terminates. Every shard count produces bit-identical
// results (see internal/network/shard_test.go); this benchmark measures
// only the wall-clock effect of stepping tiles in parallel.
func benchShardScaling(b *testing.B, shards int) {
	b.Helper()
	p := core.Baseline()
	p.Topology = "mesh16x16"
	p.Shards = shards
	cfg, err := p.Build()
	if err != nil {
		b.Fatal(err)
	}
	pat, _ := p.BuildPattern()
	sizes, _ := p.BuildSizes()
	b.ResetTimer()
	var cycles int64
	for i := 0; i < b.N; i++ {
		res, err := openloop.Run(openloop.Config{
			Net: cfg, Pattern: pat, Sizes: sizes, Rate: 0.20,
			Warmup: 500, Measure: 2000, DrainLimit: 20000, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		cycles += 2500
		_ = res
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim-cycles/s")
}

// BenchmarkShardScaling measures the sharded stepping loop on a loaded
// 16x16 mesh across shard counts. shards=1 is the sequential loop;
// higher counts step row-aligned tiles concurrently under a per-cycle
// barrier. Useful speedup needs GOMAXPROCS >= shards.
func BenchmarkShardScaling(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchShardScaling(b, shards)
		})
	}
}

// BenchmarkAnalyticCurve measures the entire analytic path the screening
// layer runs before a sweep: compile the queueing estimator for the
// baseline mesh, evaluate a 25-point latency curve, and bisect for the
// saturation knee. Screening only pays because this costs a few
// milliseconds (the curve and knee alone are microseconds; route sampling
// dominates) against the hundreds of milliseconds of each simulated
// sweep point.
func BenchmarkAnalyticCurve(b *testing.B) {
	rates := make([]float64, 25)
	for i := range rates {
		rates[i] = 0.02 * float64(i+1)
	}
	var knee float64
	for i := 0; i < b.N; i++ {
		est, err := core.AnalyticEstimator(core.Baseline())
		if err != nil {
			b.Fatal(err)
		}
		_ = est.Curve(rates)
		knee = est.Knee(3)
	}
	b.ReportMetric(knee, "knee-rate")
}

// benchSweepScreening sweeps a 64-node ring across rates that are mostly
// beyond its ~0.1 saturation point. GOMAXPROCS is pinned to 8 so the
// sweep's speculative wave is wide enough to launch the deep-saturation
// rates an unscreened sweep wastes drain-limit cycles on; with screening
// those rates never enter the wave (the reported results are identical —
// see internal/openloop/screen.go).
func benchSweepScreening(b *testing.B, screened bool) {
	b.Helper()
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)
	p := core.Baseline()
	p.Topology = "ring64"
	rates := []float64{0.02, 0.04, 0.06, 0.08, 0.3, 0.4, 0.5, 0.6}
	if screened {
		core.EnableScreening()
		defer core.DisableScreening()
	}
	opts := core.OpenLoopOpts{Warmup: 500, Measure: 1000, DrainLimit: 8000}
	b.ResetTimer()
	var pts int
	for i := 0; i < b.N; i++ {
		res, err := core.OpenLoopSweepWith(p, rates, opts)
		if err != nil {
			b.Fatal(err)
		}
		pts = len(res)
	}
	b.ReportMetric(float64(pts), "reported-points")
}

// BenchmarkSweepScreening compares an unscreened against an analytically
// screened open-loop sweep on a saturation-heavy rate axis.
func BenchmarkSweepScreening(b *testing.B) {
	b.Run("screen=off", func(b *testing.B) { benchSweepScreening(b, false) })
	b.Run("screen=on", func(b *testing.B) { benchSweepScreening(b, true) })
}
